// Tests for filter-and-verify exact-TED search, plus the edit-log file
// round trip.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "core/ted_search.h"
#include "edit/edit_script.h"
#include "storage/index_store.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

std::vector<std::pair<TreeId, const Tree*>> Refs(
    const std::vector<Tree>& trees) {
  std::vector<std::pair<TreeId, const Tree*>> refs;
  for (size_t i = 0; i < trees.size(); ++i) {
    refs.emplace_back(static_cast<TreeId>(i), &trees[i]);
  }
  return refs;
}

TEST(TedSearchTest, ExhaustiveFindsExactNeighbors) {
  Rng rng(1);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{2, 2};
  Tree base = GenerateRandomTree(dict, &rng, {.num_nodes = 30});
  std::vector<Tree> collection;
  // Variants at controlled edit counts: 1, 3, 6, ... edits.
  for (int i = 0; i < 6; ++i) {
    Tree variant = base.Clone();
    EditLog log;
    GenerateEditScript(&variant, &rng, 1 + i * 3, EditScriptOptions{}, &log);
    collection.push_back(std::move(variant));
  }
  TedSearchStats stats;
  std::vector<TedSearchHit> hits =
      TedTopKExhaustive(Refs(collection), base, 3, shape, &stats);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(stats.verified, 6);
  // Ascending TED, and each TED is the true Zhang-Shasha value.
  EXPECT_LE(hits[0].ted, hits[1].ted);
  EXPECT_LE(hits[1].ted, hits[2].ted);
  EXPECT_LE(hits[0].ted, 1);  // the 1-edit variant (or a tie) wins
}

TEST(TedSearchTest, FilteredMatchesExhaustiveWithFullOversample) {
  Rng rng(2);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{3, 3};
  std::vector<Tree> collection;
  for (int i = 0; i < 12; ++i) {
    collection.push_back(
        GenerateRandomTree(dict, &rng, {.num_nodes = 25}));
  }
  Tree query = GenerateRandomTree(dict, &rng, {.num_nodes = 25});
  // Oversample covering the whole collection == exhaustive.
  std::vector<TedSearchHit> filtered =
      TedTopK(Refs(collection), query, 4, shape, /*oversample=*/100.0);
  std::vector<TedSearchHit> exhaustive =
      TedTopKExhaustive(Refs(collection), query, 4, shape);
  ASSERT_EQ(filtered.size(), exhaustive.size());
  for (size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(filtered[i].tree_id, exhaustive[i].tree_id);
    EXPECT_EQ(filtered[i].ted, exhaustive[i].ted);
  }
}

TEST(TedSearchTest, FilterPrunesVerificationWork) {
  Rng rng(3);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{3, 3};
  Tree base = GenerateXmarkLike(dict, &rng, 120);
  std::vector<Tree> collection;
  // One close neighbor hidden among unrelated documents.
  for (int i = 0; i < 19; ++i) {
    collection.push_back(GenerateXmarkLike(dict, &rng, 120));
  }
  Tree twin = base.Clone();
  EditLog log;
  GenerateEditScript(&twin, &rng, 2, EditScriptOptions{}, &log);
  collection.push_back(std::move(twin));  // id 19

  TedSearchStats stats;
  std::vector<TedSearchHit> hits =
      TedTopK(Refs(collection), base, 1, shape, /*oversample=*/3.0, &stats);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].tree_id, 19);
  EXPECT_LE(hits[0].ted, 2);
  EXPECT_LE(stats.verified, 3);  // only the oversampled candidates
  EXPECT_EQ(stats.collection_size, 20);
}

TEST(TedSearchTest, DegenerateInputs) {
  std::vector<std::pair<TreeId, const Tree*>> empty;
  Tree query = ParseTreeNotation("a").value();
  EXPECT_TRUE(TedTopK(empty, query, 3, PqShape{2, 2}).empty());
  Tree single = ParseTreeNotation("a(b)").value();
  std::vector<std::pair<TreeId, const Tree*>> one = {{5, &single}};
  EXPECT_TRUE(TedTopK(one, query, 0, PqShape{2, 2}).empty());
  std::vector<TedSearchHit> hits = TedTopK(one, query, 10, PqShape{2, 2});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].tree_id, 5);
  EXPECT_EQ(hits[0].ted, 1);
}

TEST(EditLogFileTest, SaveLoadRoundTrip) {
  Rng rng(4);
  Tree doc = GenerateRandomTree(nullptr, &rng, {.num_nodes = 30});
  EditLog log;
  GenerateEditScript(&doc, &rng, 25, EditScriptOptions{}, &log);
  std::string path = ::testing::TempDir() + "/pqidx_log_test.bin";
  ASSERT_TRUE(SaveEditLog(log, path).ok());
  StatusOr<EditLog> loaded = LoadEditLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, log);
}

TEST(EditLogFileTest, RejectsWrongFiles) {
  std::string path = ::testing::TempDir() + "/pqidx_log_bogus.bin";
  ASSERT_TRUE(WriteFile(path, "garbage").ok());
  EXPECT_FALSE(LoadEditLog(path).ok());
  // An index file is not a log file.
  ForestIndex forest(PqShape{2, 2});
  std::string index_path = ::testing::TempDir() + "/pqidx_log_idx.bin";
  ASSERT_TRUE(SaveForestIndex(forest, index_path).ok());
  EXPECT_FALSE(LoadEditLog(index_path).ok());
  EXPECT_FALSE(LoadEditLog("/nonexistent/log.bin").ok());
}

}  // namespace
}  // namespace pqidx
