// Tests for the delta function (Definition 4, Lemma 1 / Table 1,
// Algorithm 2): delta(Tj, e-bar) computed on the single tree Tj must equal
// the brute-force profile difference P_j \ P_i with T_i = e-bar(T_j).

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/delta.h"
#include "core/delta_store.h"
#include "core/profile.h"
#include "edit/edit_script.h"
#include "test_util.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

using ::pqidx::testing::AllTestShapes;
using ::pqidx::testing::DescribeDiff;
using ::pqidx::testing::SetMinus;
using ::pqidx::testing::StoreToSet;

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

// Checks delta(tj, op) == P(tj) \ P(op(tj)) for one operation and shape.
void CheckDelta(const Tree& tj, const EditOperation& op,
                const PqShape& shape) {
  ASSERT_TRUE(op.IsDefinedOn(tj));
  Tree ti = tj.Clone();
  ASSERT_TRUE(op.ApplyTo(&ti).ok());

  DeltaStore store(shape);
  ComputeDelta(tj, op, &store);
  store.CheckConsistency();
  std::set<PqGram> got = StoreToSet(store);
  std::set<PqGram> want =
      SetMinus(ComputeProfileSet(tj, shape), ComputeProfileSet(ti, shape));
  EXPECT_EQ(got, want) << "op " << op.ToString(tj.dict()) << " shape ("
                       << shape.p << "," << shape.q << ") on tree "
                       << ToNotationWithIds(tj) << "\n"
                       << DescribeDiff(got, want, tj.dict());
}

TEST(DeltaTest, VanishedNodeYieldsEmptyDelta) {
  Tree tree = MustParse("a(b,c)");
  DeltaStore store(PqShape{3, 3});
  // DEL / REN of an unknown node: nothing to select on Tn.
  EXPECT_EQ(ComputeDelta(tree, EditOperation::Delete(99), &store), 0);
  EXPECT_EQ(ComputeDelta(tree, EditOperation::Rename(99, 1), &store), 0);
  // INS under an unknown parent.
  EXPECT_EQ(
      ComputeDelta(tree, EditOperation::Insert(99, 1, 98, 0, 0), &store), 0);
  EXPECT_EQ(store.CountPqGrams(), 0);
  EXPECT_EQ(store.p_row_count(), 0);
}

TEST(DeltaTest, ClampedSemanticsFetchExistingRows) {
  // Operations that are not applicable to Tn as a whole still select the
  // rows that exist (Algorithm 2's relational reading); see DESIGN.md,
  // "Clamped delta semantics". The selected pq-grams are always pq-grams
  // of Tn.
  Tree tree = MustParse("a(b,c)");
  PqShape shape{2, 2};
  std::set<PqGram> profile = ComputeProfileSet(tree, shape);

  // REN to the label the node already has: fetches everything around b.
  NodeId b = tree.child(tree.root(), 0);
  {
    DeltaStore store(shape);
    EXPECT_GT(
        ComputeDelta(tree, EditOperation::Rename(b, tree.label(b)), &store),
        0);
    for (const PqGram& g : StoreToSet(store)) {
      EXPECT_TRUE(profile.contains(g));
    }
  }
  // INS whose adopted-child range exceeds the fanout: clamps to the
  // children that exist instead of returning nothing.
  {
    DeltaStore store(shape);
    LabelId x = tree.mutable_dict()->Intern("x");
    EXPECT_GT(ComputeDelta(
                  tree, EditOperation::Insert(tree.AllocateId(), x,
                                              tree.root(), 1, 5),
                  &store),
              0);
    std::set<PqGram> got = StoreToSet(store);
    for (const PqGram& g : got) {
      EXPECT_TRUE(profile.contains(g));
    }
    // The window containing the surviving child c must be fetched.
    bool saw_c = false;
    NodeId c = tree.child(tree.root(), 1);
    for (const PqGram& g : got) {
      saw_c |= std::find(g.ids.begin(), g.ids.end(), c) != g.ids.end();
    }
    EXPECT_TRUE(saw_c);
  }
}

TEST(DeltaTest, RenameDeltaIsAllPqGramsContainingNode) {
  // Lemma 1: for REN(n, l), g in delta iff n in N(g).
  Tree tree = MustParse("a(b,c(e,f),d)");
  PqShape shape{3, 3};
  NodeId c = tree.child(tree.root(), 1);
  LabelId x = tree.mutable_dict()->Intern("x");
  DeltaStore store(shape);
  ComputeDelta(tree, EditOperation::Rename(c, x), &store);
  std::set<PqGram> got = StoreToSet(store);
  int containing = 0;
  for (const PqGram& g : ComputeProfileSet(tree, shape)) {
    bool has_c = std::find(g.ids.begin(), g.ids.end(), c) != g.ids.end();
    if (has_c) {
      ++containing;
      EXPECT_TRUE(got.contains(g));
    } else {
      EXPECT_FALSE(got.contains(g));
    }
  }
  EXPECT_EQ(static_cast<int>(got.size()), containing);
}

TEST(DeltaTest, PaperExample5DeltaPlus) {
  // Example 5 / Figure 12: T2 with reverse operations
  // e-bar1 = DEL(n7), e-bar2 = INS((n3,b), n1, 2, 3) (1-based), 3,3-grams.
  // Delta2+ has 9 distinct pq-grams.
  auto dict = std::make_shared<LabelDict>();
  Tree t2(dict);
  NodeId n1 = t2.CreateRoot("a");
  t2.AddChild(n1, "c");                    // n2
  t2.AddChild(n1, "e");                    // n5
  NodeId n6 = t2.AddChild(n1, "f");
  t2.AddChild(n1, "c");                    // n4 (labels per Example 5)
  NodeId n7 = t2.AddChild(n6, "g");
  // Fix document order: n7 was appended, it is the only child of n6.
  ASSERT_EQ(t2.SiblingIndex(n7), 0);

  PqShape shape{3, 3};
  DeltaStore store(shape);
  LabelId b_label = dict->Intern("b");
  NodeId n3 = t2.AllocateId();
  ComputeDelta(t2, EditOperation::Delete(n7), &store);
  // Paper (1-based): INS((n3,b), n1, 2, 3) -> 0-based position 1, count 2.
  ComputeDelta(t2, EditOperation::Insert(n3, b_label, n1, 1, 2), &store);
  EXPECT_EQ(store.CountPqGrams(), 9);

  // Compare the label-tuples against the paper's lambda(Delta2+).
  auto h = [&](const char* l) { return KarpRabinFingerprint(l); };
  const LabelHash A = h("a"), C = h("c"), E = h("e"), F = h("f"), G = h("g"),
                  N = kNullLabelHash;
  std::set<std::vector<LabelHash>> want = {
      {N, N, A, N, C, E}, {N, N, A, C, E, F}, {N, N, A, E, F, C},
      {N, N, A, F, C, N}, {N, A, E, N, N, N}, {N, A, F, N, N, G},
      {N, A, F, N, G, N}, {N, A, F, G, N, N}, {A, F, G, N, N, N}};
  std::set<std::vector<LabelHash>> got;
  for (const PqGram& g : StoreToSet(store)) got.insert(g.labels);
  EXPECT_EQ(got, want);
}

class DeltaPropertyTest : public ::testing::TestWithParam<PqShape> {};

TEST_P(DeltaPropertyTest, MatchesBruteForceOnRandomOps) {
  const PqShape shape = GetParam();
  Rng rng(5000 + shape.p * 100 + shape.q);
  for (int trial = 0; trial < 30; ++trial) {
    int nodes = 1 + static_cast<int>(rng.NextBounded(40));
    Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = nodes});
    // Draw a random valid operation (via the script generator so the op
    // distribution matches the workloads) but check it *without* applying.
    Tree scratch = tree.Clone();
    EditLog log;
    std::vector<EditOperation> forward;
    GenerateEditScript(&scratch, &rng, 1, EditScriptOptions{}, &log,
                       &forward);
    CheckDelta(tree, forward[0], shape);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, DeltaPropertyTest,
    ::testing::ValuesIn(pqidx::testing::AllTestShapes()),
    [](const ::testing::TestParamInfo<PqShape>& info) {
      return "p" + std::to_string(info.param.p) + "q" +
             std::to_string(info.param.q);
    });

TEST(DeltaTest, EdgeCaseLeafInsertIntoLeafParent) {
  // Inserting the first child under a leaf flips the parent's q-part from
  // the special all-null row to real windows.
  for (const PqShape& shape : AllTestShapes()) {
    Tree tree = MustParse("a(b)");
    NodeId b = tree.child(tree.root(), 0);
    LabelId x = tree.mutable_dict()->Intern("x");
    CheckDelta(tree, EditOperation::Insert(tree.AllocateId(), x, b, 0, 0),
               shape);
  }
}

TEST(DeltaTest, EdgeCaseDeleteOnlyChild) {
  // Deleting a leaf that is an only child makes the parent a leaf.
  for (const PqShape& shape : AllTestShapes()) {
    Tree tree = MustParse("a(b(c))");
    NodeId b = tree.child(tree.root(), 0);
    CheckDelta(tree, EditOperation::Delete(tree.child(b, 0)), shape);
  }
}

TEST(DeltaTest, EdgeCaseAdoptAllChildren) {
  for (const PqShape& shape : AllTestShapes()) {
    Tree tree = MustParse("a(b,c,d)");
    LabelId x = tree.mutable_dict()->Intern("x");
    CheckDelta(tree,
               EditOperation::Insert(tree.AllocateId(), x, tree.root(), 0, 3),
               shape);
  }
}

TEST(DeltaTest, EdgeCaseGapInsertBetweenSiblings) {
  // count = 0 in the middle: only the paper's Q^{k..k-1} gap windows.
  for (const PqShape& shape : AllTestShapes()) {
    Tree tree = MustParse("a(b,c,d)");
    LabelId x = tree.mutable_dict()->Intern("x");
    CheckDelta(tree,
               EditOperation::Insert(tree.AllocateId(), x, tree.root(), 1, 0),
               shape);
    CheckDelta(tree,
               EditOperation::Insert(tree.AllocateId(), x, tree.root(), 3, 0),
               shape);
  }
}

TEST(DeltaTest, EdgeCaseDeleteDeepChain) {
  // Descendants beyond distance p-1 are untouched.
  for (const PqShape& shape : AllTestShapes()) {
    Tree tree = MustParse("a(b(c(d(e(f(g))))))");
    NodeId b = tree.child(tree.root(), 0);
    CheckDelta(tree, EditOperation::Delete(b), shape);
    LabelId x = tree.mutable_dict()->Intern("x");
    CheckDelta(tree, EditOperation::Rename(b, x), shape);
  }
}

TEST(DeltaTest, SetSemanticsAcrossOverlappingOps) {
  // Two operations near each other share pq-grams; the union must not
  // double count.
  Tree tree = MustParse("a(b,c(e,f),d)");
  PqShape shape{2, 2};
  NodeId c = tree.child(tree.root(), 1);
  LabelId x = tree.mutable_dict()->Intern("x");
  DeltaStore store(shape);
  ComputeDelta(tree, EditOperation::Rename(c, x), &store);
  int64_t after_first = store.CountPqGrams();
  ComputeDelta(tree, EditOperation::Delete(c), &store);
  // DEL(c) affects the same pq-grams as REN(c) for equal shapes.
  EXPECT_EQ(store.CountPqGrams(), after_first);
  store.CheckConsistency();
}

}  // namespace
}  // namespace pqidx
