// Tests for subtree-level operations expanded into node edit sequences
// (paper Section 10), including their interaction with the incremental
// index update.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/subtree_ops.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

TEST(SubtreeOpsTest, DeleteSubtreeRemovesAllNodes) {
  Tree tree = MustParse("a(b(c,d(e)),f)");
  NodeId b = tree.child(tree.root(), 0);
  EditLog log;
  ASSERT_TRUE(DeleteSubtree(b, &tree, &log).ok());
  EXPECT_EQ(ToNotation(tree), "a(f)");
  EXPECT_EQ(log.size(), 4);  // b, c, d, e
  tree.CheckConsistency();

  // The log undoes the whole subtree deletion.
  ASSERT_TRUE(log.UndoAll(&tree).ok());
  EXPECT_EQ(ToNotation(tree), "a(b(c,d(e)),f)");
}

TEST(SubtreeOpsTest, DeleteSubtreeValidation) {
  Tree tree = MustParse("a(b)");
  EditLog log;
  EXPECT_FALSE(DeleteSubtree(tree.root(), &tree, &log).ok());
  EXPECT_FALSE(DeleteSubtree(999, &tree, &log).ok());
}

TEST(SubtreeOpsTest, InsertSubtreeCopiesPattern) {
  Tree tree = MustParse("a(x,y)");
  Tree pattern = MustParse("s(t,u(v))");
  EditLog log;
  NodeId new_root = kNullNodeId;
  ASSERT_TRUE(InsertSubtree(pattern, tree.root(), 1, &tree, &log, &new_root)
                  .ok());
  EXPECT_EQ(ToNotation(tree), "a(x,s(t,u(v)),y)");
  EXPECT_EQ(tree.LabelString(new_root), "s");
  EXPECT_EQ(log.size(), 4);
  tree.CheckConsistency();

  ASSERT_TRUE(log.UndoAll(&tree).ok());
  EXPECT_EQ(ToNotation(tree), "a(x,y)");
}

TEST(SubtreeOpsTest, InsertSubtreeValidation) {
  Tree tree = MustParse("a(x)");
  Tree pattern = MustParse("s");
  Tree empty(std::make_shared<LabelDict>());
  EditLog log;
  EXPECT_FALSE(InsertSubtree(empty, tree.root(), 0, &tree, &log).ok());
  EXPECT_FALSE(InsertSubtree(pattern, 999, 0, &tree, &log).ok());
  EXPECT_FALSE(InsertSubtree(pattern, tree.root(), 5, &tree, &log).ok());
  EXPECT_FALSE(InsertSubtree(pattern, tree.root(), -1, &tree, &log).ok());
}

TEST(SubtreeOpsTest, MoveSubtreePreservesShape) {
  Tree tree = MustParse("a(b(c,d),e(f))");
  NodeId b = tree.child(tree.root(), 0);
  NodeId e = tree.child(tree.root(), 1);
  EditLog log;
  ASSERT_TRUE(MoveSubtree(b, e, 1, &tree, &log).ok());
  EXPECT_EQ(ToNotation(tree), "a(e(f,b(c,d)))");
  tree.CheckConsistency();

  ASSERT_TRUE(log.UndoAll(&tree).ok());
  EXPECT_EQ(ToNotation(tree), "a(b(c,d),e(f))");
}

TEST(SubtreeOpsTest, MoveIntoOwnSubtreeRejected) {
  Tree tree = MustParse("a(b(c))");
  NodeId b = tree.child(tree.root(), 0);
  NodeId c = tree.child(b, 0);
  EditLog log;
  EXPECT_FALSE(MoveSubtree(b, c, 0, &tree, &log).ok());
  EXPECT_FALSE(MoveSubtree(b, b, 0, &tree, &log).ok());
  EXPECT_EQ(ToNotation(tree), "a(b(c))");  // untouched
}

TEST(SubtreeOpsTest, IncrementalUpdateOverSubtreeOps) {
  // Subtree operations produce plain node-op logs, so the incremental
  // index maintenance applies unchanged (paper Section 10).
  Rng rng(1);
  PqShape shape{3, 3};
  Tree t0 = GenerateXmarkLike(nullptr, &rng, 400);
  Tree tn = t0.Clone();
  EditLog log;

  // Delete one subtree, move another, insert a new one.
  NodeId victim = tn.child(tn.child(tn.root(), 3), 0);  // a person
  ASSERT_TRUE(DeleteSubtree(victim, &tn, &log).ok());
  NodeId auctions = tn.child(tn.root(), 4);
  if (tn.fanout(auctions) > 0) {
    ASSERT_TRUE(MoveSubtree(tn.child(auctions, 0), tn.root(), 0, &tn, &log)
                    .ok());
  }
  Tree pattern = MustParse("annotation(author,description(text))");
  ASSERT_TRUE(InsertSubtree(pattern, tn.root(), 2, &tn, &log).ok());

  PqGramIndex index = BuildIndex(t0, shape);
  ASSERT_TRUE(UpdateIndex(&index, tn, log).ok());
  EXPECT_EQ(index, BuildIndex(tn, shape));
  EXPECT_GT(log.size(), 5);
}

}  // namespace
}  // namespace pqidx
