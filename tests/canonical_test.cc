// Tests for canonical-order pq-grams (unordered tree matching).

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "core/canonical.h"
#include "core/distance.h"
#include "edit/edit_script.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

// Builds a copy of `tree` with every child list permuted (fresh ids).
Tree PermutedCopy(const Tree& tree, Rng* rng) {
  Tree copy(tree.dict_ptr());
  copy.CreateRoot(tree.label(tree.root()));
  struct Item {
    NodeId src;
    NodeId dst;
  };
  std::vector<Item> stack{{tree.root(), copy.root()}};
  while (!stack.empty()) {
    auto [src, dst] = stack.back();
    stack.pop_back();
    auto kids = tree.children(src);
    std::vector<NodeId> order(kids.begin(), kids.end());
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng->NextBounded(i)]);
    }
    for (NodeId c : order) {
      stack.push_back({c, copy.AddChild(dst, tree.label(c))});
    }
  }
  return copy;
}

TEST(CanonicalTest, FingerprintInvariantUnderPermutation) {
  Tree a = MustParse("r(x(a,b),y,z(c))");
  Tree b = MustParse("r(z(c),x(b,a),y)");
  EXPECT_EQ(CanonicalSubtreeFingerprint(a, a.root()),
            CanonicalSubtreeFingerprint(b, b.root()));
  Tree c = MustParse("r(z(c),x(b,a),w)");  // different leaf label
  EXPECT_NE(CanonicalSubtreeFingerprint(a, a.root()),
            CanonicalSubtreeFingerprint(c, c.root()));
}

TEST(CanonicalTest, FingerprintSeesDepth) {
  // Same label multiset, different nesting.
  Tree a = MustParse("r(a(b),c)");
  Tree b = MustParse("r(a,b(c))");
  EXPECT_NE(CanonicalSubtreeFingerprint(a, a.root()),
            CanonicalSubtreeFingerprint(b, b.root()));
}

TEST(CanonicalTest, ChildOrderSortsByLabel) {
  Tree tree = MustParse("r(c,a,b)");
  std::vector<NodeId> order = CanonicalChildOrder(tree, tree.root());
  ASSERT_EQ(order.size(), 3u);
  // Sorted by label hash: verify it is *some* deterministic permutation
  // of the children that is stable across identical trees.
  Tree again = MustParse("r(b,a,c)");
  std::vector<NodeId> order2 = CanonicalChildOrder(again, again.root());
  std::vector<std::string> labels1, labels2;
  for (NodeId n : order) labels1.push_back(tree.LabelString(n));
  for (NodeId n : order2) labels2.push_back(again.LabelString(n));
  EXPECT_EQ(labels1, labels2);
}

TEST(CanonicalTest, IndexInvariantUnderSiblingPermutations) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    Tree tree = GenerateRandomTree(
        nullptr, &rng,
        {.num_nodes = 1 + static_cast<int>(rng.NextBounded(60)),
         .alphabet_size = 5});
    Tree permuted = PermutedCopy(tree, &rng);
    for (PqShape shape : {PqShape{1, 2}, PqShape{2, 3}, PqShape{3, 3}}) {
      EXPECT_EQ(BuildCanonicalIndex(tree, shape),
                BuildCanonicalIndex(permuted, shape))
          << ToNotation(tree) << " vs " << ToNotation(permuted);
      EXPECT_DOUBLE_EQ(CanonicalPqGramDistance(tree, permuted, shape), 0.0);
    }
  }
}

TEST(CanonicalTest, OrderedDistanceSeesPermutationsCanonicalDoesNot) {
  Rng rng(2);
  PqShape shape{3, 3};
  double ordered_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 50});
    Tree permuted = PermutedCopy(tree, &rng);
    ordered_total += PqGramDistance(tree, permuted, shape);
    EXPECT_DOUBLE_EQ(CanonicalPqGramDistance(tree, permuted, shape), 0.0);
  }
  EXPECT_GT(ordered_total, 0.5);  // ordered distance reacts to shuffles
}

TEST(CanonicalTest, StillSensitiveToRealChanges) {
  Rng rng(3);
  PqShape shape{3, 3};
  for (int trial = 0; trial < 10; ++trial) {
    Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 50});
    Tree edited = tree.Clone();
    EditLog log;
    GenerateEditScript(&edited, &rng, 8, EditScriptOptions{}, &log);
    EXPECT_GT(CanonicalPqGramDistance(tree, edited, shape), 0.0);
  }
}

TEST(CanonicalTest, CanonicalMatchesOrderedOnCanonicallySortedTree) {
  // For a tree already in canonical order the two indexes coincide.
  Tree tree = MustParse("r(a,b,c(a,b))");
  PqShape shape{2, 2};
  // Build a canonically-ordered copy and compare ordered vs canonical.
  Rng rng(4);
  Tree copy = PermutedCopy(tree, &rng);
  EXPECT_EQ(BuildCanonicalIndex(copy, shape).size(),
            BuildIndex(copy, shape).size());
}

TEST(CanonicalTest, SingleNodeAndChains) {
  for (PqShape shape : {PqShape{1, 1}, PqShape{3, 3}}) {
    Tree single = MustParse("a");
    EXPECT_EQ(BuildCanonicalIndex(single, shape),
              BuildIndex(single, shape));
    // Chains have no sibling freedom: canonical == ordered.
    Tree chain = MustParse("a(b(c(d)))");
    EXPECT_EQ(BuildCanonicalIndex(chain, shape), BuildIndex(chain, shape));
  }
}

}  // namespace
}  // namespace pqidx
