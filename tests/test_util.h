// Shared helpers for pqidx tests: profile set algebra, delta-store
// materialization, and random-workload drivers used by the property tests.

#ifndef PQIDX_TESTS_TEST_UTIL_H_
#define PQIDX_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/delta_store.h"
#include "core/pqgram.h"
#include "core/profile.h"
#include "tree/tree.h"

namespace pqidx::testing {

// Materializes the pq-grams currently represented by a delta store.
inline std::set<PqGram> StoreToSet(const DeltaStore& store) {
  std::set<PqGram> out;
  const int n = store.shape().tuple_size();
  store.ForEachPqGram([&](const PqGramView& view) {
    PqGram gram;
    gram.ids.assign(view.ids, view.ids + n);
    gram.labels.assign(view.labels, view.labels + n);
    out.insert(std::move(gram));
  });
  return out;
}

// Set difference a \ b.
inline std::set<PqGram> SetMinus(const std::set<PqGram>& a,
                                 const std::set<PqGram>& b) {
  std::set<PqGram> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::inserter(out, out.begin()));
  return out;
}

inline std::set<PqGram> SetIntersect(const std::set<PqGram>& a,
                                     const std::set<PqGram>& b) {
  std::set<PqGram> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

inline std::set<PqGram> SetUnion(const std::set<PqGram>& a,
                                 const std::set<PqGram>& b) {
  std::set<PqGram> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::inserter(out, out.begin()));
  return out;
}

// Pretty-prints a pq-gram set difference for failure messages.
inline std::string DescribeDiff(const std::set<PqGram>& got,
                                const std::set<PqGram>& want,
                                const LabelDict& dict) {
  std::string out;
  for (const PqGram& g : SetMinus(got, want)) {
    out += "  unexpected: " + PqGramToString(g, dict) + "\n";
  }
  for (const PqGram& g : SetMinus(want, got)) {
    out += "  missing:    " + PqGramToString(g, dict) + "\n";
  }
  return out;
}

// The shapes exercised by the property tests. The 3x3 grid covers the
// paper's configurations (3,3 and 1,2) plus all degenerate p/q = 1 cases.
inline std::vector<PqShape> AllTestShapes() {
  std::vector<PqShape> shapes;
  for (int p = 1; p <= 3; ++p) {
    for (int q = 1; q <= 3; ++q) shapes.push_back(PqShape{p, q});
  }
  shapes.push_back(PqShape{4, 4});
  return shapes;
}

}  // namespace pqidx::testing

#endif  // PQIDX_TESTS_TEST_UTIL_H_
