// Shared helpers for pqidx tests: hermetic scratch directories, profile
// set algebra, delta-store materialization, and random-workload drivers
// used by the property tests.

#ifndef PQIDX_TESTS_TEST_UTIL_H_
#define PQIDX_TESTS_TEST_UTIL_H_

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "core/delta_store.h"
#include "core/pqgram.h"
#include "core/profile.h"
#include "tree/tree.h"

namespace pqidx::testing {

// An exclusive scratch directory (mkdtemp under $TMPDIR, else /tmp).
// Tests that reuse fixed store names collide when `ctest -j` runs
// binaries in parallel or a killed run leaves files behind; routing
// every path through one of these makes each process hermetic. The
// directory and its (direct) entries are removed on destruction.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = base != nullptr && *base != '\0' ? base : "/tmp";
    tmpl += "/pqidx_test_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) path_ = buf.data();
  }
  ~ScopedTempDir() {
    if (path_.empty()) return;
    if (DIR* dir = ::opendir(path_.c_str())) {
      while (dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  bool ok() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

// Materializes the pq-grams currently represented by a delta store.
inline std::set<PqGram> StoreToSet(const DeltaStore& store) {
  std::set<PqGram> out;
  const int n = store.shape().tuple_size();
  store.ForEachPqGram([&](const PqGramView& view) {
    PqGram gram;
    gram.ids.assign(view.ids, view.ids + n);
    gram.labels.assign(view.labels, view.labels + n);
    out.insert(std::move(gram));
  });
  return out;
}

// Set difference a \ b.
inline std::set<PqGram> SetMinus(const std::set<PqGram>& a,
                                 const std::set<PqGram>& b) {
  std::set<PqGram> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::inserter(out, out.begin()));
  return out;
}

inline std::set<PqGram> SetIntersect(const std::set<PqGram>& a,
                                     const std::set<PqGram>& b) {
  std::set<PqGram> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

inline std::set<PqGram> SetUnion(const std::set<PqGram>& a,
                                 const std::set<PqGram>& b) {
  std::set<PqGram> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::inserter(out, out.begin()));
  return out;
}

// Pretty-prints a pq-gram set difference for failure messages.
inline std::string DescribeDiff(const std::set<PqGram>& got,
                                const std::set<PqGram>& want,
                                const LabelDict& dict) {
  std::string out;
  for (const PqGram& g : SetMinus(got, want)) {
    out += "  unexpected: " + PqGramToString(g, dict) + "\n";
  }
  for (const PqGram& g : SetMinus(want, got)) {
    out += "  missing:    " + PqGramToString(g, dict) + "\n";
  }
  return out;
}

// The shapes exercised by the property tests. The 3x3 grid covers the
// paper's configurations (3,3 and 1,2) plus all degenerate p/q = 1 cases.
inline std::vector<PqShape> AllTestShapes() {
  std::vector<PqShape> shapes;
  for (int p = 1; p <= 3; ++p) {
    for (int q = 1; q <= 3; ++q) shapes.push_back(PqShape{p, q});
  }
  shapes.push_back(PqShape{4, 4});
  return shapes;
}

}  // namespace pqidx::testing

#endif  // PQIDX_TESTS_TEST_UTIL_H_
