// ShardedStore unit tests: manifest codec round-trips and corruption
// handling, shard routing, group-commit ticket/cursor reconciliation,
// merged reads, and backward compatibility with pre-shard single-file
// stores (manifest absent => N = 1 legacy layout).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "storage/persistent_forest_index.h"
#include "storage/shard_manifest.h"
#include "storage/sharded_store.h"
#include "test_util.h"

namespace pqidx {
namespace {

std::string TempPath(const std::string& name) {
  static pqidx::testing::ScopedTempDir dir;
  return dir.File(name);
}

void RemoveStoreAt(const std::string& path) {
  std::remove((path + "/MANIFEST").c_str());
  for (int k = 0; k < 16; ++k) {
    char name[16];
    std::snprintf(name, sizeof(name), "shard-%04d", k);
    const std::string shard = path + "/" + name;
    std::remove(shard.c_str());
    std::remove((shard + ".wal").c_str());
  }
  ::rmdir(path.c_str());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

PqGramIndex Bag(const PqShape& shape,
                std::initializer_list<std::pair<PqGramFingerprint, int>>
                    counts) {
  PqGramIndex bag(shape);
  for (const auto& [fp, count] : counts) bag.Add(fp, count);
  return bag;
}

// --- manifest codec -----------------------------------------------------

TEST(ShardManifestTest, EncodeDecodeRoundTrip) {
  ShardManifest manifest;
  manifest.shard_count = 7;
  manifest.committed_ticket = 42;
  manifest.committed_cursor = 17;
  const std::string bytes = EncodeShardManifest(manifest);
  ASSERT_EQ(bytes.size(), kShardManifestSize);
  StatusOr<ShardManifest> decoded = DecodeShardManifest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->shard_count, 7u);
  EXPECT_EQ(decoded->routing, kShardRoutingModulo);
  EXPECT_EQ(decoded->committed_ticket, 42u);
  EXPECT_EQ(decoded->committed_cursor, 17u);
}

TEST(ShardManifestTest, RejectsTruncatedAndCorruptImages) {
  ShardManifest manifest;
  manifest.shard_count = 4;
  std::string bytes = EncodeShardManifest(manifest);

  EXPECT_FALSE(DecodeShardManifest("").ok());
  EXPECT_FALSE(DecodeShardManifest(bytes.substr(0, 40)).ok());

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeShardManifest(bad_magic).ok());

  std::string bad_version = bytes;
  bad_version[4] = 9;
  EXPECT_FALSE(DecodeShardManifest(bad_version).ok());

  std::string zero_shards = bytes;
  zero_shards[8] = 0;
  EXPECT_FALSE(DecodeShardManifest(zero_shards).ok());

  // Both slots corrupt: no durable commit point left.
  std::string torn = bytes;
  torn[kShardManifestSlotAOff] ^= 0xff;
  torn[kShardManifestSlotBOff] ^= 0xff;
  EXPECT_FALSE(DecodeShardManifest(torn).ok());
}

TEST(ShardManifestTest, TornSlotFallsBackToTheOtherSlot) {
  // Slot A carries ticket 9, slot B a torn (higher-ticket) write: decode
  // must fall back to A -- the previous durable point survives.
  ShardManifest manifest;
  manifest.shard_count = 2;
  manifest.committed_ticket = 9;
  manifest.committed_cursor = 5;
  std::string bytes = EncodeShardManifest(manifest);
  uint8_t slot[kShardManifestSlotSize];
  EncodeShardManifestSlot(10, 6, slot);
  slot[17] ^= 0xff;  // torn write: checksum no longer matches
  bytes.replace(kShardManifestSlotBOff, kShardManifestSlotSize,
                reinterpret_cast<const char*>(slot), kShardManifestSlotSize);
  StatusOr<ShardManifest> decoded = DecodeShardManifest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->committed_ticket, 9u);
  EXPECT_EQ(decoded->committed_cursor, 5u);
  EXPECT_FALSE(decoded->committed_in_slot_b);
}

// --- sharded store ------------------------------------------------------

TEST(ShardedStoreTest, RoutesAndMergesAcrossShards) {
  const PqShape shape{2, 3};
  const std::string path = TempPath("routes.store");
  RemoveStoreAt(path);
  StatusOr<std::unique_ptr<ShardedStore>> created =
      ShardedStore::Create(path, shape, 4);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<ShardedStore> store = std::move(created).value();
  EXPECT_EQ(store->shard_count(), 4);
  EXPECT_EQ(store->ShardOf(6), 2);

  std::vector<PqGramIndex> bags;
  std::vector<std::pair<TreeId, const PqGramIndex*>> refs;
  for (TreeId id = 0; id < 10; ++id) {
    bags.push_back(Bag(shape, {{100 + id, 2}, {200 + id, 1}}));
  }
  for (TreeId id = 0; id < 10; ++id) refs.emplace_back(id, &bags[id]);
  ASSERT_TRUE(store->BulkAdd(refs).ok());

  EXPECT_EQ(store->size(), 10);
  EXPECT_EQ(store->TreeIds().size(), 10u);
  EXPECT_EQ(store->TreeIds().front(), 0u);
  EXPECT_EQ(store->TreeBagSize(6), 3);
  // Every tree landed on its modulo shard, and only there.
  for (TreeId id = 0; id < 10; ++id) {
    EXPECT_EQ(store->shard(store->ShardOf(id))->TreeBagSize(id), 3);
  }
  StatusOr<ForestIndex> forest = store->MaterializeForest();
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->size(), 10);
  store->CheckConsistency();
}

TEST(ShardedStoreTest, GroupCommitSurvivesReopen) {
  const PqShape shape{2, 2};
  const std::string path = TempPath("group.store");
  RemoveStoreAt(path);
  ForestIndex mirror(shape);
  {
    StatusOr<std::unique_ptr<ShardedStore>> created =
        ShardedStore::Create(path, shape, 3);
    ASSERT_TRUE(created.ok());
    std::unique_ptr<ShardedStore> store = std::move(created).value();

    std::vector<PqGramIndex> bags;
    for (TreeId id = 0; id < 6; ++id) {
      bags.push_back(Bag(shape, {{10 + id, 1}}));
      mirror.AddIndex(id, bags.back());
    }
    std::vector<PersistentForestIndex::BatchEdit> edits;
    for (TreeId id = 0; id < 6; ++id) {
      PersistentForestIndex::BatchEdit edit;
      edit.id = id;
      edit.add = &bags[id];
      edits.push_back(edit);
    }
    std::vector<Status> results;
    ASSERT_TRUE(store->ApplyBatch(edits, &results, nullptr, nullptr, 7).ok());
    for (const Status& s : results) EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(store->replication_cursor(), 7u);
    EXPECT_GE(store->committed_ticket(), 1u);
  }
  StatusOr<std::unique_ptr<ShardedStore>> reopened = ShardedStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->shard_count(), 3);
  EXPECT_EQ((*reopened)->replication_cursor(), 7u);
  StatusOr<ForestIndex> forest = (*reopened)->MaterializeForest();
  ASSERT_TRUE(forest.ok());
  EXPECT_TRUE(*forest == mirror);
  RemoveStoreAt(path);
}

TEST(ShardedStoreTest, SingleShardGroupSkipsManifestButReconciles) {
  // A batch touching one shard takes the fast path (no manifest fsync);
  // reopening must still reconcile the global ticket to the shard's.
  const PqShape shape{2, 2};
  const std::string path = TempPath("fastpath.store");
  RemoveStoreAt(path);
  uint64_t ticket_after = 0;
  {
    StatusOr<std::unique_ptr<ShardedStore>> created =
        ShardedStore::Create(path, shape, 2);
    ASSERT_TRUE(created.ok());
    std::unique_ptr<ShardedStore> store = std::move(created).value();
    PqGramIndex bag = Bag(shape, {{1, 1}});
    std::vector<PersistentForestIndex::BatchEdit> edits(1);
    edits[0].id = 2;  // shard 0 only
    edits[0].add = &bag;
    std::vector<Status> results;
    ASSERT_TRUE(store->ApplyBatch(edits, &results).ok());
    ticket_after = store->committed_ticket();
    EXPECT_GE(ticket_after, 1u);
    // The untouched shard has no durable ticket.
    EXPECT_EQ(store->shard(1)->store_ticket(), 0u);
  }
  StatusOr<std::unique_ptr<ShardedStore>> reopened = ShardedStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->committed_ticket(), ticket_after);
  EXPECT_EQ((*reopened)->size(), 1);
  RemoveStoreAt(path);
}

TEST(ShardedStoreTest, PerEditValidationStaysPerShard) {
  // A duplicate add routed to shard 1 must not disturb the edit that
  // shard 0 commits in the same group.
  const PqShape shape{2, 2};
  const std::string path = TempPath("validation.store");
  RemoveStoreAt(path);
  StatusOr<std::unique_ptr<ShardedStore>> created =
      ShardedStore::Create(path, shape, 2);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<ShardedStore> store = std::move(created).value();
  PqGramIndex seed = Bag(shape, {{5, 1}});
  ASSERT_TRUE(store->BulkAdd({{1, &seed}}).ok());

  PqGramIndex add_bag = Bag(shape, {{6, 1}});
  std::vector<PersistentForestIndex::BatchEdit> edits(2);
  edits[0].id = 1;  // duplicate add on shard 1
  edits[0].add = &add_bag;
  edits[1].id = 2;  // fresh add on shard 0
  edits[1].add = &add_bag;
  std::vector<Status> results;
  ASSERT_TRUE(store->ApplyBatch(edits, &results).ok());
  EXPECT_FALSE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(store->TreeBagSize(2), 1);
  RemoveStoreAt(path);
}

// --- backward compatibility ---------------------------------------------

TEST(ShardedStoreTest, OpensPreShardSingleFileUnchanged) {
  // A store written by PersistentForestIndex directly -- the layout
  // every pre-shard version produced -- must open as a single-shard
  // store with its contents and cursor intact, and keep committing.
  const PqShape shape{2, 3};
  const std::string path = TempPath("preshard.idx");
  RemoveStoreAt(path);
  ForestIndex mirror(shape);
  {
    StatusOr<std::unique_ptr<PersistentForestIndex>> legacy =
        PersistentForestIndex::Create(path, shape);
    ASSERT_TRUE(legacy.ok());
    PqGramIndex bag = Bag(shape, {{7, 2}, {8, 1}});
    mirror.AddIndex(3, bag);
    ASSERT_TRUE((*legacy)->BulkAdd({{3, &bag}}, nullptr, 11).ok());
  }
  StatusOr<std::unique_ptr<ShardedStore>> opened = ShardedStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<ShardedStore> store = std::move(opened).value();
  EXPECT_EQ(store->shard_count(), 1);
  EXPECT_EQ(store->replication_cursor(), 11u);
  StatusOr<ForestIndex> forest = store->MaterializeForest();
  ASSERT_TRUE(forest.ok());
  EXPECT_TRUE(*forest == mirror);

  // And the file stays readable by the legacy opener after a commit
  // through the sharded facade.
  PqGramIndex more = Bag(shape, {{9, 1}});
  std::vector<PersistentForestIndex::BatchEdit> edits(1);
  edits[0].id = 4;
  edits[0].add = &more;
  std::vector<Status> results;
  ASSERT_TRUE(store->ApplyBatch(edits, &results, nullptr, nullptr, 12).ok());
  store.reset();
  StatusOr<std::unique_ptr<PersistentForestIndex>> legacy_again =
      PersistentForestIndex::Open(path);
  ASSERT_TRUE(legacy_again.ok()) << legacy_again.status().ToString();
  EXPECT_EQ((*legacy_again)->replication_cursor(), 12u);
  EXPECT_EQ((*legacy_again)->size(), 2);
  RemoveStoreAt(path);
}

TEST(ShardedStoreTest, LookupMergesMostSimilarFirst) {
  const PqShape shape{2, 2};
  const std::string path = TempPath("lookup.store");
  RemoveStoreAt(path);
  StatusOr<std::unique_ptr<ShardedStore>> created =
      ShardedStore::Create(path, shape, 3);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<ShardedStore> store = std::move(created).value();
  PqGramIndex query = Bag(shape, {{1, 1}, {2, 1}});
  PqGramIndex near = Bag(shape, {{1, 1}, {2, 1}});
  PqGramIndex far = Bag(shape, {{3, 1}, {4, 1}});
  ASSERT_TRUE(store->BulkAdd({{0, &near}, {1, &far}, {2, &near}}).ok());
  StatusOr<std::vector<LookupResult>> results = store->Lookup(query, 1.1);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0].tree_id, 0u);
  EXPECT_EQ((*results)[1].tree_id, 2u);
  EXPECT_EQ((*results)[2].tree_id, 1u);
  RemoveStoreAt(path);
}

}  // namespace
}  // namespace pqidx
