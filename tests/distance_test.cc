// Focused tests for the pq-gram distance, including values derived from
// the paper's worked examples.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/canonical.h"
#include "core/distance.h"
#include "core/pqgram_index.h"
#include "core/profile.h"
#include "edit/edit_script.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

TEST(DistancePaperTest, Example5TreesDistance) {
  // The paper's running example (labels reconstructed from Example 5's
  // lambda sets): T0 = a(c,b(e,f),c), T2 = a(c,e,f(g),c). Both profiles
  // have 13 pq-grams (Example 1); the deltas of Example 5 show 9 tuples
  // leaving and 9 entering, so the bags share 13 - 9 = 4 tuples and
  //   dist = 1 - 2*4 / (13+13) = 9/13.
  Tree t0 = MustParse("a(c,b(e,f),c)");
  Tree t2 = MustParse("a(c,e,f(g),c)");
  const PqShape shape{3, 3};
  EXPECT_EQ(ProfileSize(t0, shape), 13);
  EXPECT_EQ(ProfileSize(t2, shape), 13);
  EXPECT_DOUBLE_EQ(PqGramDistance(t0, t2, shape), 9.0 / 13.0);
}

TEST(DistanceTest, HandComputedSmallCase) {
  // 1,1-grams of a(b,c): {(a,b),(a,c),(b,*),(c,*)}; of a(b,x):
  // {(a,b),(a,x),(b,*),(x,*)}. Shared 2 of 4+4.
  Tree t1 = MustParse("a(b,c)");
  Tree t2 = MustParse("a(b,x)");
  EXPECT_DOUBLE_EQ(PqGramDistance(t1, t2, PqShape{1, 1}), 1.0 - 4.0 / 8.0);
}

TEST(DistanceTest, DuplicateTuplesCountWithMultiplicity) {
  // Bag semantics: a(b,b,b) vs a(b): the leaf tuple (a,b,*) has count 3
  // vs 1 -> intersection contributes min(3,1) = 1.
  Tree t1 = MustParse("a(b,b,b)");
  Tree t2 = MustParse("a(b)");
  PqShape shape{2, 1};
  PqGramIndex i1 = BuildIndex(t1, shape);
  PqGramIndex i2 = BuildIndex(t2, shape);
  // t1: root windows (b),(b),(b); leaves (a,b,*)x3 -> |I1| = 6.
  EXPECT_EQ(i1.size(), 6);
  EXPECT_EQ(i2.size(), 2);
  // Shared: (*,a,b) root window min(3,1)=1; (a,b,*) leaf min(3,1)=1.
  EXPECT_EQ(BagIntersectionSize(i1, i2), 2);
  EXPECT_DOUBLE_EQ(PqGramDistance(i1, i2), 1.0 - 4.0 / 8.0);
}

TEST(DistanceTest, RenameLocality) {
  // Renaming a leaf deep in the tree disturbs few pq-grams; renaming the
  // child of the root with a large subtree disturbs more for p > 1.
  Tree base = MustParse("r(a(b(c,d),e),f)");
  Tree leaf_renamed = MustParse("r(a(b(c,X),e),f)");
  Tree inner_renamed = MustParse("r(X(b(c,d),e),f)");
  PqShape shape{3, 3};
  double leaf_dist = PqGramDistance(base, leaf_renamed, shape);
  double inner_dist = PqGramDistance(base, inner_renamed, shape);
  EXPECT_GT(leaf_dist, 0.0);
  EXPECT_GT(inner_dist, leaf_dist);
}

TEST(DistanceTest, LargerPSpreadsStructuralSensitivity) {
  // A rename near the root touches all pq-grams whose p-part crosses it:
  // deeper p-parts -> more affected tuples -> larger distance.
  Tree base = MustParse("r(a(b(c(d(e)))))");
  Tree renamed = MustParse("r(X(b(c(d(e)))))");
  double d1 = PqGramDistance(base, renamed, PqShape{1, 2});
  double d3 = PqGramDistance(base, renamed, PqShape{3, 2});
  EXPECT_LT(d1, d3);
}

TEST(DistanceTest, TriangleLikeBehaviorOnEditPaths) {
  // Along an edit path T0 -> T1 -> T2, dist(T0,T2) stays in the same
  // ballpark as dist(T0,T1)+dist(T1,T2) (the pq-gram distance is a
  // pseudo-metric on bags: the bag symmetric difference IS a metric, so
  // the normalized form satisfies a weak triangle property on these
  // workloads).
  Rng rng(1);
  PqShape shape{2, 2};
  for (int trial = 0; trial < 10; ++trial) {
    Tree t0 = GenerateRandomTree(nullptr, &rng, {.num_nodes = 60});
    Tree t1 = t0.Clone();
    EditLog log;
    GenerateEditScript(&t1, &rng, 5, EditScriptOptions{}, &log);
    Tree t2 = t1.Clone();
    GenerateEditScript(&t2, &rng, 5, EditScriptOptions{}, &log);
    double d01 = PqGramDistance(t0, t1, shape);
    double d12 = PqGramDistance(t1, t2, shape);
    double d02 = PqGramDistance(t0, t2, shape);
    EXPECT_LE(d02, 2.0 * (d01 + d12) + 1e-9);
  }
}

TEST(DistanceTest, EmptyIntersectionIsExactlyOne) {
  Rng rng(2);
  auto dict = std::make_shared<LabelDict>();
  Tree a(dict);
  a.CreateRoot("left_only");
  a.AddChild(a.root(), "l1");
  Tree b(dict);
  b.CreateRoot("right_only");
  b.AddChild(b.root(), "r1");
  EXPECT_DOUBLE_EQ(PqGramDistance(a, b, PqShape{2, 2}), 1.0);
}

TEST(DistanceTest, ShapeMattersForIdenticalComparisons) {
  // Identical trees are at distance 0 under every shape; the shape only
  // changes the resolution for different trees.
  Rng rng(3);
  Tree t = GenerateXmarkLike(nullptr, &rng, 100);
  for (int p = 1; p <= 3; ++p) {
    for (int q = 1; q <= 3; ++q) {
      EXPECT_DOUBLE_EQ(PqGramDistance(t, t, PqShape{p, q}), 0.0);
    }
  }
}

TEST(DistanceTest, CanonicalAndOrderedAgreeOnOrderFreeEdits) {
  // Renames do not involve sibling order: both distances move together.
  Rng rng(4);
  PqShape shape{3, 3};
  Tree base = GenerateDblpLike(nullptr, &rng, 40);
  Tree edited = base.Clone();
  EditLog log;
  EditScriptOptions options;
  options.insert_weight = 0.0;
  options.delete_weight = 0.0;
  GenerateEditScript(&edited, &rng, 10, options, &log);
  double ordered = PqGramDistance(base, edited, shape);
  double canonical = CanonicalPqGramDistance(base, edited, shape);
  EXPECT_GT(ordered, 0.0);
  EXPECT_GT(canonical, 0.0);
  EXPECT_NEAR(ordered, canonical, 0.25 * ordered + 0.05);
}

TEST(ContainmentTest, FragmentOfLargeDocumentScoresHigh) {
  // A record copied out of a big document: symmetric distance is large
  // (sizes differ wildly) but containment stays high.
  Rng rng(5);
  PqShape shape{2, 2};
  Tree doc = GenerateDblpLike(nullptr, &rng, 300);
  // Extract one record by rebuilding it as a standalone tree.
  NodeId rec = doc.child(doc.root(), 123);
  Tree record(doc.dict_ptr());
  record.CreateRoot(doc.label(rec));
  std::vector<std::pair<NodeId, NodeId>> stack{{rec, record.root()}};
  while (!stack.empty()) {
    auto [src, dst] = stack.back();
    stack.pop_back();
    for (NodeId c : doc.children(src)) {
      stack.emplace_back(c, record.AddChild(dst, doc.label(c)));
    }
  }
  double containment = PqGramContainment(record, doc, shape);
  double distance = PqGramDistance(record, doc, shape);
  EXPECT_GT(containment, 0.6);  // most of the record's grams occur in doc
  EXPECT_GT(distance, 0.9);     // the symmetric distance is useless here
  // An unrelated fragment is not contained.
  Rng other(6);
  Tree foreign = GenerateXmarkLike(nullptr, &other, 40);
  EXPECT_LT(PqGramContainment(foreign, doc, shape), 0.2);
}

TEST(ContainmentTest, BasicProperties) {
  Tree whole = MustParse("a(b,c(e,f),d)");
  PqShape shape{2, 2};
  // Everything is contained in itself.
  EXPECT_DOUBLE_EQ(PqGramContainment(whole, whole, shape), 1.0);
  // Containment is asymmetric.
  Tree part = MustParse("c(e,f)");
  double p_in_w = PqGramContainment(part, whole, shape);
  double w_in_p = PqGramContainment(whole, part, shape);
  EXPECT_GT(p_in_w, w_in_p);
  // Range.
  EXPECT_GE(p_in_w, 0.0);
  EXPECT_LE(p_in_w, 1.0);
}

}  // namespace
}  // namespace pqidx
