// Tests for the pq-gram index, the pq-gram distance, the forest index with
// approximate lookup, and index/tree persistence.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/distance.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "storage/index_store.h"
#include "storage/tree_store.h"
#include "ted/zhang_shasha.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

TEST(PqGramIndexTest, BagSemantics) {
  PqGramIndex index(PqShape{2, 2});
  index.Add(42, 2);
  index.Add(42);
  index.Add(7);
  EXPECT_EQ(index.size(), 4);
  EXPECT_EQ(index.distinct(), 2);
  EXPECT_EQ(index.Count(42), 3);
  index.Remove(42, 2);
  EXPECT_EQ(index.Count(42), 1);
  index.Remove(42);
  EXPECT_EQ(index.Count(42), 0);
  EXPECT_EQ(index.distinct(), 1);
  EXPECT_EQ(index.size(), 1);
}

TEST(PqGramIndexTest, BuildCountsDuplicateTuples) {
  // Example 3: in T0 the tuple (*,a,b,*,*,*) occurs twice, anchored at the
  // two leaves with equal labels under the root.
  Tree tree = MustParse("a(b,c,b)");
  PqGramIndex index = BuildIndex(tree, PqShape{2, 2});
  // Leaves "b" at positions 0 and 2 anchor identical label tuples.
  int64_t max_count = 0;
  for (const auto& [fp, count] : index.counts()) {
    max_count = std::max(max_count, count);
  }
  EXPECT_EQ(max_count, 2);
  EXPECT_EQ(index.size(), 7);  // root fanout 3 -> 4 windows; 3 leaf grams
}

TEST(PqGramIndexTest, SerializationRoundTrip) {
  Rng rng(1);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 60});
  PqGramIndex index = BuildIndex(tree, PqShape{3, 3});
  ByteWriter w;
  index.Serialize(&w);
  ByteReader r(w.data());
  StatusOr<PqGramIndex> copy = PqGramIndex::Deserialize(&r);
  ASSERT_TRUE(copy.ok()) << copy.status().ToString();
  EXPECT_EQ(*copy, index);
  EXPECT_EQ(index.SerializedBytes(), static_cast<int64_t>(w.data().size()));
}

TEST(DistanceTest, IdenticalTreesAtZero) {
  Tree a = MustParse("a(b,c(e,f),d)");
  Tree b = MustParse("a(b,c(e,f),d)");
  EXPECT_DOUBLE_EQ(PqGramDistance(a, b, PqShape{2, 3}), 0.0);
}

TEST(DistanceTest, DisjointTreesAtOne) {
  Tree a = MustParse("a(b)");
  Tree b = MustParse("x(y)");
  EXPECT_DOUBLE_EQ(PqGramDistance(a, b, PqShape{2, 2}), 1.0);
}

TEST(DistanceTest, RangeAndSymmetry) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Tree a = GenerateRandomTree(nullptr, &rng, {.num_nodes = 20});
    Tree b = GenerateRandomTree(nullptr, &rng, {.num_nodes = 25});
    double d1 = PqGramDistance(a, b, PqShape{3, 3});
    double d2 = PqGramDistance(b, a, PqShape{3, 3});
    EXPECT_DOUBLE_EQ(d1, d2);
    EXPECT_GE(d1, 0.0);
    EXPECT_LE(d1, 1.0);
  }
}

TEST(DistanceTest, GrowsWithEditCount) {
  // More edit operations -> (weakly) larger pq-gram distance on average.
  Rng rng(3);
  PqShape shape{3, 3};
  double few_total = 0, many_total = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Tree t0 = GenerateRandomTree(nullptr, &rng, {.num_nodes = 150});
    Tree few = t0.Clone(), many = t0.Clone();
    EditLog log;
    GenerateEditScript(&few, &rng, 2, EditScriptOptions{}, &log);
    GenerateEditScript(&many, &rng, 60, EditScriptOptions{}, &log);
    few_total += PqGramDistance(t0, few, shape);
    many_total += PqGramDistance(t0, many, shape);
  }
  EXPECT_LT(few_total, many_total);
}

TEST(DistanceTest, SmallTedImpliesSmallPqGramDistance) {
  // The pq-gram distance approximates the tree edit distance: one edit
  // operation touches at most a bounded number of pq-grams.
  Rng rng(4);
  PqShape shape{2, 2};
  for (int trial = 0; trial < 6; ++trial) {
    Tree t0 = GenerateRandomTree(nullptr, &rng, {.num_nodes = 120,
                                                 .max_fanout = 4});
    Tree t1 = t0.Clone();
    EditLog log;
    GenerateEditScript(&t1, &rng, 1, EditScriptOptions{}, &log);
    EXPECT_LE(PqGramDistance(t0, t1, shape), 0.4);
    EXPECT_LE(TreeEditDistance(t0, t1), 1);
  }
}

TEST(DistanceTest, MismatchedShapesAbort) {
  Tree a = MustParse("a(b)");
  PqGramIndex i22 = BuildIndex(a, PqShape{2, 2});
  PqGramIndex i33 = BuildIndex(a, PqShape{3, 3});
  EXPECT_DEATH(PqGramDistance(i22, i33), "equal shapes");
}

TEST(ForestIndexTest, LookupFindsPerturbedDocuments) {
  Rng rng(5);
  auto dict = std::make_shared<LabelDict>();
  ForestIndex forest(PqShape{3, 3});

  // Ten base documents; document 0 gets a lightly edited twin as id 100.
  Tree base0 = GenerateXmarkLike(dict, &rng, 300);
  Tree twin = base0.Clone();
  EditLog log;
  GenerateEditScript(&twin, &rng, 3, EditScriptOptions{}, &log);
  forest.AddTree(0, base0);
  forest.AddTree(100, twin);
  for (TreeId id = 1; id < 10; ++id) {
    forest.AddTree(id, GenerateXmarkLike(dict, &rng, 300));
  }
  EXPECT_EQ(forest.size(), 11);

  std::vector<LookupResult> hits = forest.Lookup(base0, 0.3);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].tree_id, 0);  // exact match first
  EXPECT_DOUBLE_EQ(hits[0].distance, 0.0);
  EXPECT_EQ(hits[1].tree_id, 100);  // the twin next
}

TEST(ForestIndexTest, AddRemoveFind) {
  ForestIndex forest(PqShape{2, 2});
  Tree a = MustParse("a(b)");
  forest.AddTree(7, a);
  EXPECT_NE(forest.Find(7), nullptr);
  EXPECT_EQ(forest.Find(8), nullptr);
  EXPECT_TRUE(forest.RemoveTree(7));
  EXPECT_FALSE(forest.RemoveTree(7));
  EXPECT_EQ(forest.Find(7), nullptr);
}

TEST(ForestIndexTest, ApplyLogMaintainsIndex) {
  Rng rng(6);
  ForestIndex forest(PqShape{3, 3});
  Tree t0 = GenerateRandomTree(nullptr, &rng, {.num_nodes = 80});
  forest.AddTree(1, t0);

  Tree tn = t0.Clone();
  EditLog log;
  GenerateEditScript(&tn, &rng, 20, EditScriptOptions{}, &log);
  ASSERT_TRUE(forest.ApplyLog(1, tn, log).ok());
  EXPECT_EQ(*forest.Find(1), BuildIndex(tn, PqShape{3, 3}));

  EXPECT_FALSE(forest.ApplyLog(99, tn, log).ok());  // unknown tree
}

TEST(ForestIndexTest, PersistenceRoundTrip) {
  Rng rng(7);
  ForestIndex forest(PqShape{3, 3});
  auto dict = std::make_shared<LabelDict>();
  for (TreeId id = 0; id < 5; ++id) {
    forest.AddTree(id, GenerateDblpLike(dict, &rng, 20));
  }
  std::string path = ::testing::TempDir() + "/pqidx_forest.idx";
  ASSERT_TRUE(SaveForestIndex(forest, path).ok());
  StatusOr<ForestIndex> loaded = LoadForestIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, forest);
}

TEST(ForestIndexTest, LoadRejectsCorruptFiles) {
  std::string path = ::testing::TempDir() + "/pqidx_bogus.idx";
  ASSERT_TRUE(WriteFile(path, "not an index").ok());
  EXPECT_FALSE(LoadForestIndex(path).ok());
  EXPECT_FALSE(LoadForestIndex("/nonexistent/path.idx").ok());
}

TEST(TreeStoreTest, TreeRoundTrip) {
  Rng rng(8);
  Tree tree = GenerateDblpLike(nullptr, &rng, 30);
  std::string path = ::testing::TempDir() + "/pqidx_tree.bin";
  ASSERT_TRUE(SaveTree(tree, path).ok());
  StatusOr<Tree> loaded = LoadTree(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(ToNotation(*loaded), ToNotation(tree));
  loaded->CheckConsistency();
}

TEST(TreeStoreTest, SerializedBytesTracksSize) {
  Rng rng(9);
  Tree small = GenerateDblpLike(nullptr, &rng, 10);
  Tree large = GenerateDblpLike(nullptr, &rng, 200);
  EXPECT_LT(TreeSerializedBytes(small), TreeSerializedBytes(large));
}

TEST(TreeStoreTest, LoadRejectsTruncation) {
  Rng rng(10);
  Tree tree = GenerateDblpLike(nullptr, &rng, 5);
  std::string path = ::testing::TempDir() + "/pqidx_tree_trunc.bin";
  ASSERT_TRUE(SaveTree(tree, path).ok());
  std::string data;
  ASSERT_TRUE(ReadFile(path, &data).ok());
  ASSERT_TRUE(WriteFile(path, std::string_view(data).substr(
                                  0, data.size() / 2))
                  .ok());
  EXPECT_FALSE(LoadTree(path).ok());
}

TEST(IndexStatsTest, SummarizesDeduplication) {
  Tree tree = MustParse("a(b,b,b,c)");
  PqGramIndex index = BuildIndex(tree, PqShape{2, 1});
  IndexStats stats = ComputeIndexStats(index);
  EXPECT_EQ(stats.size, index.size());
  EXPECT_EQ(stats.distinct, index.distinct());
  EXPECT_GT(stats.dedup_ratio, 1.0);
  EXPECT_EQ(stats.max_count, 3);  // the three b leaves/windows
  EXPECT_GE(stats.singletons, 1);
  EXPECT_NE(stats.ToString().find("pq-grams"), std::string::npos);
}

TEST(IndexStatsTest, EmptyIndex) {
  PqGramIndex empty(PqShape{2, 2});
  IndexStats stats = ComputeIndexStats(empty);
  EXPECT_EQ(stats.size, 0);
  EXPECT_EQ(stats.distinct, 0);
  EXPECT_DOUBLE_EQ(stats.dedup_ratio, 1.0);
}

TEST(IndexSizeTest, IndexSmallerThanDocument) {
  // Figure 14 (left): the index is significantly smaller than the tree.
  Rng rng(11);
  Tree tree = GenerateXmarkLike(nullptr, &rng, 20000);
  int64_t doc_bytes = TreeSerializedBytes(tree);
  for (PqShape shape : {PqShape{1, 2}, PqShape{3, 3}}) {
    PqGramIndex index = BuildIndex(tree, shape);
    EXPECT_LT(index.SerializedBytes(), doc_bytes);
  }
}

}  // namespace
}  // namespace pqidx
