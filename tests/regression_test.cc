// Regression tests for scenarios that exposed gaps between the paper's
// formal Definition 4 / Theorem 1 and a correct implementation (see
// DESIGN.md, "Clamped delta semantics"). Both were found by randomized
// fuzzing of updateIndex == rebuild and are pinned here explicitly.

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_log.h"
#include "test_util.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

using ::pqidx::testing::AllTestShapes;

// Applies forward ops via ApplyAndLog and checks the incremental update
// against a rebuild for every shape.
void CheckScenario(const Tree& t0, const std::vector<EditOperation>& ops) {
  for (const PqShape& shape : AllTestShapes()) {
    Tree tn = t0.Clone();
    EditLog log;
    for (const EditOperation& op : ops) {
      ASSERT_TRUE(ApplyAndLog(op, &tn, &log).ok())
          << op.ToString(t0.dict());
    }
    PqGramIndex index = BuildIndex(t0, shape);
    ASSERT_TRUE(UpdateIndex(&index, tn, log).ok());
    ASSERT_EQ(index, BuildIndex(tn, shape))
        << "shape (" << shape.p << "," << shape.q << ")";
  }
}

TEST(RegressionTest, LaterDeleteShrinksInsertRangeOfEarlierInverse) {
  // Counterexample 1 (DESIGN.md): node 2 has children (4, 9); 9 has
  // child 11. DEL(9) splices 11 (and a prior insert 13) under 2, then
  // DEL(13) shrinks 2's fanout to 2. The log's INS(9, v=2, k=1, count=2)
  // is undefined on Tn by Definition 4; returning an empty delta loses
  // the pq-gram (2,(11)) from Delta+.
  Tree t0 = ParseTreeNotation("r(a,b(c),d)").value();  // r=1,a=2,b=3,c=4,d=5
  NodeId b = t0.child(t0.root(), 1);
  Tree work = t0.Clone();
  LabelId x = work.mutable_dict()->Intern("x");
  NodeId extra = work.AllocateId();

  std::vector<EditOperation> ops = {
      // Insert a sibling after b's subtree region, then delete b (its
      // child moves up), then delete the inserted sibling: the region
      // that INS(b,..) adopted no longer exists at the recorded width.
      EditOperation::Insert(extra, x, work.root(), 2, 0),
      EditOperation::Delete(b),
      EditOperation::Delete(extra),
  };
  CheckScenario(t0, ops);
}

TEST(RegressionTest, LaterDeleteShiftsPositionsOfEarlierInverse) {
  // Counterexample 2 (DESIGN.md): positions recorded in the log go stale
  // when a later operation deletes an earlier sibling. Forward script:
  //   DEL(8)  -- children of 5 become (6, 9, 10)
  //   REN(2)  -- unrelated noise
  //   DEL(6)  -- children of 5 shift left: (9, 10)
  // The inverse INS(8, v=5, k=1, count=2) refers to positions 1..2, but
  // on Tn the adopted children (9, 10) sit at positions 0..1. A purely
  // positional (even clamped) selection fetches the wrong window; the
  // id-anchored selection fetches (9) and (10).
  Tree t0 =
      ParseTreeNotation("n1(n2(n3,n7),n4,n5(n6,n8(n9,n10(n11(n12)))))")
          .value();
  // Pre-order ids: n1=1, n2=2, n3=3, n7=4, n4=5, n5=6, n6=7, n8=8, n9=9,
  // n10=10, n11=11, n12=12.
  Tree probe = t0.Clone();
  LabelId g = probe.mutable_dict()->Intern("gen");
  std::vector<EditOperation> ops = {
      EditOperation::Delete(8),       // n8: children n9, n10 splice up
      EditOperation::Rename(2, g),    // unrelated
      EditOperation::Delete(7),       // n6: shifts n9, n10 left
  };
  CheckScenario(t0, ops);
}

TEST(RegressionTest, InterleavedInsertDeleteOnSameParent) {
  // Dense structural churn on one child list: inserts and deletes whose
  // inverse positions all refer to different intermediate configurations.
  Tree t0 = ParseTreeNotation("r(a,b,c,d,e)").value();
  Tree work = t0.Clone();
  LabelId x = work.mutable_dict()->Intern("x");
  NodeId r = work.root();
  NodeId i1 = work.AllocateId();
  NodeId i2 = i1 + 1;
  std::vector<EditOperation> ops = {
      EditOperation::Insert(i1, x, r, 1, 2),  // wrap b, c
      EditOperation::Delete(work.child(r, 0)),  // delete a
      EditOperation::Insert(i2, x, r, 0, 3),    // wrap i1-subtree, d
      EditOperation::Delete(i1),                // unwrap b, c
      EditOperation::Delete(i2),                // unwrap everything
  };
  CheckScenario(t0, ops);
}

TEST(RegressionTest, RenameRestoredByLaterRename) {
  // REN whose inverse is "undefined" on Tn because a later rename
  // restored the original label (Definition 4 would return an empty
  // delta; the clamped semantics fetch the rows, which then cancel).
  Tree t0 = ParseTreeNotation("r(a(b,c),d)").value();
  Tree probe = t0.Clone();
  LabelId x = probe.mutable_dict()->Intern("x");
  LabelId a_label = t0.label(t0.child(t0.root(), 0));
  NodeId a = t0.child(t0.root(), 0);
  std::vector<EditOperation> ops = {
      EditOperation::Rename(a, x),
      EditOperation::Delete(t0.child(t0.root(), 1)),  // noise: delete d
      EditOperation::Rename(a, a_label),              // restore label
  };
  CheckScenario(t0, ops);
}

}  // namespace
}  // namespace pqidx
