// Property tests for the workload harness (bench/workload).
//
// The harness's correctness claims are load-bearing for the bench gate
// in CI, so they are asserted here independently of the bench binary:
//
//   * the seeded generator is deterministic and clients only edit trees
//     they own (the commutativity precondition the oracle relies on);
//   * TopK(k) equals the first k of the full similarity ranking
//     (Lookup at tau >= 1) on every compiled SIMD kernel, across random
//     seeds and evolved forests;
//   * an apply-then-revert burst restores bit-identical lookup results
//     and identical snapshot-visible content (tree bags, engine size,
//     posting entries) while recompiled shards carry fresh uids;
//   * the driver runs end to end over a pipe with the differential
//     oracle on and reports the checks it performed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/forest_index.h"
#include "core/lookup_engine.h"
#include "core/simd_intersect.h"
#include "service/server.h"
#include "service/transport.h"
#include "storage/sharded_store.h"
#include "test_util.h"
#include "workload/driver.h"
#include "workload/oracle.h"
#include "workload/workload.h"

namespace pqidx {
namespace {

using workload::ApplyDeltaToBag;
using workload::BagDelta;
using workload::BurstPlan;
using workload::ClientOps;
using workload::DescribeResultDiff;
using workload::DriverOptions;
using workload::Inverse;
using workload::MakeQuery;
using workload::Op;
using workload::OpKind;
using workload::OwnedRange;
using workload::PlanBursts;
using workload::PresetSpec;
using workload::RunResult;
using workload::RunWorkload;
using workload::SeedForest;
using workload::SynthesizeDelta;
using workload::WorkloadSpec;

// Restores the process-wide kernel selection on scope exit so a failing
// SIMD test cannot leak a forced kernel into later tests.
class ScopedSimdKernel {
 public:
  ScopedSimdKernel() : saved_(ActiveSimdKernel()) {}
  ~ScopedSimdKernel() { SetSimdKernelForTesting(saved_); }
  ScopedSimdKernel(const ScopedSimdKernel&) = delete;
  ScopedSimdKernel& operator=(const ScopedSimdKernel&) = delete;

 private:
  SimdKernel saved_;
};

constexpr SimdKernel kAllKernels[] = {SimdKernel::kScalar, SimdKernel::kSse41,
                                      SimdKernel::kAvx2, SimdKernel::kNeon};

WorkloadSpec SmallSpec(char preset, uint64_t seed) {
  WorkloadSpec spec = PresetSpec(preset);
  spec.seed = seed;
  spec.num_trees = 48;
  spec.tree_records = 5;
  spec.num_clients = 3;
  spec.ops_per_client = 90;
  spec.rounds = 2;
  return spec;
}

// The generator contract the oracle's sequential replay depends on:
// identical streams on every call, and every edit targeting a tree the
// issuing client owns exclusively.
TEST(WorkloadGeneratorTest, StreamsAreDeterministicAndOwnershipHolds) {
  const WorkloadSpec spec = SmallSpec('B', 7);
  for (int c = 0; c < spec.num_clients; ++c) {
    const std::vector<Op> a = ClientOps(spec, c);
    const std::vector<Op> b = ClientOps(spec, c);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), static_cast<size_t>(spec.ops_per_client));
    TreeId own_begin = 0, own_end = 0;
    OwnedRange(spec, c, &own_begin, &own_end);
    ASSERT_LT(own_begin, own_end);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].kind, b[i].kind);
      EXPECT_EQ(a[i].tree, b[i].tree);
      EXPECT_EQ(a[i].tau, b[i].tau);
      EXPECT_EQ(a[i].k, b[i].k);
      EXPECT_EQ(a[i].noise_seed, b[i].noise_seed);
      if (a[i].kind == OpKind::kEdit) {
        EXPECT_GE(a[i].tree, own_begin) << "client " << c << " op " << i;
        EXPECT_LT(a[i].tree, own_end) << "client " << c << " op " << i;
      }
    }
  }

  // Ranges of distinct clients are disjoint and cover [0, num_trees).
  TreeId covered = 0;
  for (int c = 0; c < spec.num_clients; ++c) {
    TreeId begin = 0, end = 0;
    OwnedRange(spec, c, &begin, &end);
    EXPECT_EQ(begin, covered);
    covered = end;
  }
  EXPECT_EQ(covered, static_cast<TreeId>(spec.num_trees));

  // Two independently seeded forests answer queries identically.
  const ForestIndex f1 = SeedForest(spec);
  const ForestIndex f2 = SeedForest(spec);
  ASSERT_EQ(f1.size(), f2.size());
  Rng rng(99);
  for (int q = 0; q < 8; ++q) {
    const TreeId base = static_cast<TreeId>(rng.Zipf(spec.num_trees, 0.99));
    const PqGramIndex query = MakeQuery(*f1.Find(base), rng.Next());
    EXPECT_EQ(
        DescribeResultDiff(f1.Lookup(query, 1.0), f2.Lookup(query, 1.0)), "");
  }
}

// TopK(k) must be exactly the first k entries of the full similarity
// ranking, on every SIMD kernel this build and CPU support, for random
// seeds and forests evolved away from their seed state.
TEST(WorkloadOracleTest, TopKMatchesFullLookupPrefixAcrossKernels) {
  ScopedSimdKernel restore;
  for (uint64_t seed : {11u, 12u, 13u}) {
    WorkloadSpec spec = SmallSpec('B', seed);
    ForestIndex forest = SeedForest(spec);

    // Evolve some bags with synthesized deltas so the ranking reflects
    // post-edit content, not just the seeded forest.
    Rng rng(seed * 77 + 1);
    for (int i = 0; i < 16; ++i) {
      const TreeId id = static_cast<TreeId>(rng.Zipf(spec.num_trees, 0.99));
      PqGramIndex bag = *forest.Find(id);
      ApplyDeltaToBag(&bag, SynthesizeDelta(bag, rng.Next()));
      forest.AddIndex(id, std::move(bag));
    }

    // The query set is fixed before the kernel loop so every kernel
    // answers the same questions.
    std::vector<PqGramIndex> queries;
    for (int q = 0; q < 6; ++q) {
      const TreeId base = static_cast<TreeId>(rng.Zipf(spec.num_trees, 0.99));
      queries.push_back(MakeQuery(*forest.Find(base), rng.Next()));
    }

    for (SimdKernel kernel : kAllKernels) {
      if (!SetSimdKernelForTesting(kernel)) continue;
      const auto engine = LookupEngine::Build(forest, 5);
      for (const PqGramIndex& query : queries) {
        const std::vector<LookupResult> full = engine->Lookup(query, 1.0);
        EXPECT_EQ(DescribeResultDiff(forest.Lookup(query, 1.0), full), "")
            << SimdKernelName(kernel) << " seed " << seed;
        for (int k : {0, 1, 3, spec.topk_k, 1 << 20}) {
          const std::vector<LookupResult> prefix(
              full.begin(),
              full.begin() +
                  std::min<size_t>(static_cast<size_t>(k), full.size()));
          EXPECT_EQ(DescribeResultDiff(prefix, engine->TopK(query, k)), "")
              << SimdKernelName(kernel) << " seed " << seed << " k " << k;
        }
      }
    }
  }
}

// An ephemeral burst applied and then reverted in reverse order must
// leave no observable trace: every touched bag restored exactly, every
// pinned query answering bit-identically, snapshot shape (tree count,
// posting entries) unchanged -- while the recompiled shards carry fresh
// uids (the property the query-cache epoch protocol keys on).
TEST(WorkloadOracleTest, ApplyThenRevertRestoresBitIdenticalState) {
  WorkloadSpec spec = SmallSpec('C', 21);
  spec.burst_trees = 5;
  spec.burst_depth = 4;
  ForestIndex forest = SeedForest(spec);
  const auto engine0 = LookupEngine::Build(forest, 7);

  // Pin queries and their pre-burst answers.
  Rng rng(991);
  std::vector<PqGramIndex> queries;
  for (int q = 0; q < 6; ++q) {
    const TreeId base = static_cast<TreeId>(rng.Zipf(spec.num_trees, 0.99));
    queries.push_back(MakeQuery(*forest.Find(base), rng.Next()));
  }
  const std::vector<double> taus = {0.3, 0.7, 1.0};
  std::vector<std::vector<LookupResult>> pre_lookups, pre_topks;
  for (const PqGramIndex& query : queries) {
    for (double tau : taus) pre_lookups.push_back(engine0->Lookup(query, tau));
    pre_topks.push_back(engine0->TopK(query, spec.topk_k));
  }

  const std::vector<BurstPlan> plans = PlanBursts(spec, forest, 0xfeed);
  ASSERT_FALSE(plans.empty());
  std::map<TreeId, PqGramIndex> originals;
  std::vector<TreeId> touched;
  for (const BurstPlan& plan : plans) {
    if (originals.emplace(plan.tree, *forest.Find(plan.tree)).second) {
      touched.push_back(plan.tree);
    }
    ASSERT_EQ(plan.deltas.size(), static_cast<size_t>(spec.burst_depth));
  }

  // Apply every delta, publishing one incremental snapshot per tree.
  std::shared_ptr<const LookupEngine> engine = engine0;
  for (const BurstPlan& plan : plans) {
    for (const BagDelta& delta : plan.deltas) {
      PqGramIndex bag = *forest.Find(plan.tree);
      ApplyDeltaToBag(&bag, delta);
      forest.AddIndex(plan.tree, std::move(bag));
    }
    engine = LookupEngine::ApplyDelta(engine, forest, {plan.tree});
  }

  // Revert: inverse deltas in reverse order.
  for (auto plan = plans.rbegin(); plan != plans.rend(); ++plan) {
    for (auto delta = plan->deltas.rbegin(); delta != plan->deltas.rend();
         ++delta) {
      PqGramIndex bag = *forest.Find(plan->tree);
      ApplyDeltaToBag(&bag, Inverse(*delta));
      forest.AddIndex(plan->tree, std::move(bag));
    }
    engine = LookupEngine::ApplyDelta(engine, forest, {plan->tree});
  }

  // Bags restored exactly (bag arithmetic over integer counts).
  for (const auto& [id, original] : originals) {
    EXPECT_EQ(*forest.Find(id), original) << "tree " << id;
  }

  // Snapshot-visible content identical...
  EXPECT_EQ(engine->size(), engine0->size());
  EXPECT_EQ(engine->posting_entries(), engine0->posting_entries());
  size_t at = 0;
  for (const PqGramIndex& query : queries) {
    for (double tau : taus) {
      EXPECT_EQ(DescribeResultDiff(pre_lookups[at++], engine->Lookup(query,
                                                                     tau)),
                "");
    }
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(
        DescribeResultDiff(pre_topks[q], engine->TopK(queries[q],
                                                      spec.topk_k)),
        "");
  }

  // ...but served from recompiled shards: at least the touched shards
  // were rebuilt, so the uid vectors must differ (no stale cache hit
  // can survive the burst).
  EXPECT_NE(engine->ShardUids(), engine0->ShardUids());
}

// End to end: the driver seeds a live in-process server over a pipe,
// runs the full scenario with bursts, and the oracle performs sweeps
// without detecting a divergence.
TEST(WorkloadDriverTest, EndToEndOverPipeWithOracle) {
  pqidx::testing::ScopedTempDir tmp;
  ASSERT_TRUE(tmp.ok());

  WorkloadSpec spec = SmallSpec('B', 31);
  spec.ops_per_client = 60;
  spec.burst_trees = 2;
  spec.burst_depth = 2;

  StatusOr<std::unique_ptr<ShardedStore>> store =
      ShardedStore::Create(tmp.File("workload.idx"), spec.shape);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  std::unique_ptr<ShardedStore> index = std::move(store).value();

  ServerOptions options;
  options.max_connections = spec.num_clients + 2;
  Server server(index.get(), options);
  auto listener = std::make_unique<PipeListener>();
  PipeListener* connect_point = listener.get();
  ASSERT_TRUE(server.Start(std::move(listener)).ok());

  DriverOptions driver_options;
  driver_options.oracle = true;
  driver_options.server = &server;
  StatusOr<RunResult> run = RunWorkload(
      spec, [connect_point] { return connect_point->Connect(); },
      driver_options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_EQ(run->failures, 0);
  EXPECT_EQ(run->lookups + run->topks + run->edits,
            static_cast<int64_t>(spec.num_clients) * spec.ops_per_client);
  EXPECT_GT(run->oracle_checks, 0);
  EXPECT_GT(run->oracle_comparisons, 0);
  EXPECT_GT(run->bursts, 0);
  EXPECT_GT(run->burst_comparisons, 0);
  EXPECT_EQ(run->stats.tree_count, static_cast<int64_t>(spec.num_trees));
  server.Stop();
}

}  // namespace
}  // namespace pqidx
