// Cross-module edge cases that the per-module suites do not pin:
// extreme values, degenerate shapes, huge-fanout (DBLP-shaped) scenarios,
// and interactions between the unordered and record-level features.

#include <gtest/gtest.h>

#include <climits>
#include <memory>

#include "common/random.h"
#include "common/serde.h"
#include "core/canonical.h"
#include "core/distance.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "core/profile.h"
#include "core/record_index.h"
#include "edit/edit_log.h"
#include "edit/edit_script.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

TEST(SerdeEdgeTest, SignedVarintExtremes) {
  ByteWriter w;
  for (int64_t v : {INT64_MIN, INT64_MIN + 1, int64_t{-1}, int64_t{0},
                    int64_t{1}, INT64_MAX - 1, INT64_MAX}) {
    w.PutSignedVarint(v);
  }
  ByteReader r(w.data());
  for (int64_t want : {INT64_MIN, INT64_MIN + 1, int64_t{-1}, int64_t{0},
                       int64_t{1}, INT64_MAX - 1, INT64_MAX}) {
    int64_t got;
    ASSERT_TRUE(r.GetSignedVarint(&got).ok());
    EXPECT_EQ(got, want);
  }
}

TEST(SerdeEdgeTest, StringsWithEmbeddedNulsRoundTrip) {
  ByteWriter w;
  std::string payload("a\0b\0c", 5);
  w.PutString(payload);
  ByteReader r(w.data());
  std::string got;
  ASSERT_TRUE(r.GetString(&got).ok());
  EXPECT_EQ(got, payload);
}

TEST(ProfileEdgeTest, AnchorRowCountGrid) {
  // Per-anchor pq-gram counts: leaf -> 1, fanout f -> f+q-1, across a
  // fanout x q grid.
  auto dict = std::make_shared<LabelDict>();
  for (int f = 0; f <= 6; ++f) {
    Tree tree(dict);
    NodeId root = tree.CreateRoot("r");
    for (int i = 0; i < f; ++i) tree.AddChild(root, "c");
    for (int q = 1; q <= 4; ++q) {
      int64_t expected_root_rows = f == 0 ? 1 : f + q - 1;
      // Total = root rows + one per leaf child.
      EXPECT_EQ(ProfileSize(tree, PqShape{2, q}), expected_root_rows + f)
          << "f=" << f << " q=" << q;
    }
  }
}

TEST(IncrementalEdgeTest, HugeFanoutRootOperations) {
  // DBLP shape: thousands of children under one root; operations at the
  // far left, middle, and far right of the child list, plus record-level
  // churn, all maintained incrementally.
  Rng rng(1);
  const PqShape shape{3, 3};
  Tree doc = GenerateDblpLike(nullptr, &rng, 2000);
  PqGramIndex index = BuildIndex(doc, shape);
  Tree tn = doc.Clone();
  EditLog log;
  NodeId root = tn.root();
  LabelId x = tn.mutable_dict()->Intern("retracted");

  // Leftmost record renamed, middle record deleted, a new record wrapped
  // around the two rightmost.
  ASSERT_TRUE(
      ApplyAndLog(EditOperation::Rename(tn.child(root, 0), x), &tn, &log)
          .ok());
  ASSERT_TRUE(
      ApplyAndLog(EditOperation::Delete(tn.child(root, 1000)), &tn, &log)
          .ok());
  int f = tn.fanout(root);
  ASSERT_TRUE(ApplyAndLog(EditOperation::Insert(tn.AllocateId(), x, root,
                                                f - 2, 2),
                          &tn, &log)
                  .ok());
  ASSERT_TRUE(UpdateIndex(&index, tn, log).ok());
  EXPECT_EQ(index, BuildIndex(tn, shape));
}

TEST(IncrementalEdgeTest, EveryChildOfRootDeleted) {
  // Shrink a star to a bare root: the final state is a single leaf.
  const PqShape shape{2, 2};
  Tree t0 = MustParse("r(a,b,c,d,e,f,g,h)");
  Tree tn = t0.Clone();
  EditLog log;
  while (tn.fanout(tn.root()) > 0) {
    ASSERT_TRUE(
        ApplyAndLog(EditOperation::Delete(tn.child(tn.root(), 0)), &tn,
                    &log)
            .ok());
  }
  PqGramIndex index = BuildIndex(t0, shape);
  ASSERT_TRUE(UpdateIndex(&index, tn, log).ok());
  EXPECT_EQ(index, BuildIndex(tn, shape));
  EXPECT_EQ(index.size(), 1);  // a bare root anchors one all-null gram
}

TEST(IncrementalEdgeTest, GrowBareRootIntoStar) {
  const PqShape shape{2, 2};
  Tree t0 = MustParse("r");
  Tree tn = t0.Clone();
  EditLog log;
  LabelId c = tn.mutable_dict()->Intern("c");
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(ApplyAndLog(EditOperation::Insert(
                                tn.AllocateId(), c, tn.root(),
                                tn.fanout(tn.root()), 0),
                            &tn, &log)
                    .ok());
  }
  PqGramIndex index = BuildIndex(t0, shape);
  ASSERT_TRUE(UpdateIndex(&index, tn, log).ok());
  EXPECT_EQ(index, BuildIndex(tn, shape));
}

TEST(CanonicalEdgeTest, RecordDedupAcrossFieldOrder) {
  // Two records with identical fields in different order: invisible to
  // the ordered self-join, found by comparing canonical bags.
  Tree doc = MustParse(
      "dblp(article(author(a),title(t),year(y)),"
      "article(year(y),author(a),title(t)),"
      "article(author(zz),title(qq)))");
  const PqShape shape{2, 2};
  auto ordered_pairs = FindSimilarRecordPairs(doc, shape, 0.01);
  EXPECT_TRUE(ordered_pairs.empty());  // field order differs

  std::vector<NodeId> records =
      SelectRecordRoots(doc, [&](const Tree& t, NodeId n) {
        return t.parent(n) == doc.root();
      });
  ASSERT_EQ(records.size(), 3u);
  Tree r0 = ExtractRecord(doc, records[0]);
  Tree r1 = ExtractRecord(doc, records[1]);
  Tree r2 = ExtractRecord(doc, records[2]);
  EXPECT_DOUBLE_EQ(CanonicalPqGramDistance(r0, r1, shape), 0.0);
  EXPECT_GT(CanonicalPqGramDistance(r0, r2, shape), 0.5);
}

TEST(TreeEdgeTest, AllocateIdNeverCollides) {
  Rng rng(2);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 30});
  for (int i = 0; i < 100; ++i) {
    NodeId fresh = tree.AllocateId();
    EXPECT_FALSE(tree.Contains(fresh));
    // Use some of them so the arena grows interleaved with allocation.
    if (i % 3 == 0) {
      ASSERT_TRUE(
          tree.ApplyInsert(fresh, tree.label(tree.root()), tree.root(), 0, 0)
              .ok());
    }
  }
  tree.CheckConsistency();
}

TEST(TreeEdgeTest, CloneAfterHeavyChurnIsIndependent) {
  Rng rng(3);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 50});
  EditLog log;
  GenerateEditScript(&tree, &rng, 80, EditScriptOptions{}, &log);
  Tree snapshot = tree.Clone();
  std::string before = ToNotationWithIds(snapshot);
  GenerateEditScript(&tree, &rng, 40, EditScriptOptions{}, &log);
  EXPECT_EQ(ToNotationWithIds(snapshot), before);
  snapshot.CheckConsistency();
}

TEST(IndexEdgeTest, ShapeExtremes) {
  // Large p on a shallow tree: p-parts are mostly nulls but distances
  // still behave.
  Tree a = MustParse("r(x,y)");
  Tree b = MustParse("r(x,z)");
  for (int p : {1, 4, 8}) {
    PqShape shape{p, 2};
    double d = PqGramDistance(a, b, shape);
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_DOUBLE_EQ(PqGramDistance(a, a, shape), 0.0);
  }
}

TEST(IndexEdgeTest, SingleNodeTreesCompareByRootLabelOnly) {
  Tree a = MustParse("same");
  Tree b = MustParse("same");
  Tree c = MustParse("different");
  PqShape shape{3, 3};
  EXPECT_DOUBLE_EQ(PqGramDistance(a, b, shape), 0.0);
  EXPECT_DOUBLE_EQ(PqGramDistance(a, c, shape), 1.0);
}

}  // namespace
}  // namespace pqidx
