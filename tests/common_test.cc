// Tests for src/common: status, fingerprints, random, serde.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/status.h"

namespace pqidx {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllErrorConstructorsSetCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(FingerprintTest, DeterministicAndLabelSensitive) {
  EXPECT_EQ(KarpRabinFingerprint("article"), KarpRabinFingerprint("article"));
  EXPECT_NE(KarpRabinFingerprint("article"), KarpRabinFingerprint("Article"));
  EXPECT_NE(KarpRabinFingerprint("ab"), KarpRabinFingerprint("ba"));
}

TEST(FingerprintTest, EmptyAndNullDistinct) {
  // No real label may collide with the null-label hash.
  EXPECT_NE(KarpRabinFingerprint(""), kNullLabelHash);
  EXPECT_NE(KarpRabinFingerprint("*"), kNullLabelHash);
}

TEST(FingerprintTest, PrefixesDistinct) {
  EXPECT_NE(KarpRabinFingerprint("ab"), KarpRabinFingerprint("abc"));
  EXPECT_NE(KarpRabinFingerprint("a"),
            KarpRabinFingerprint(std::string_view("a\0", 2)));
}

TEST(FingerprintTest, NoCollisionsOnSmallCorpus) {
  std::set<LabelHash> seen;
  for (int i = 0; i < 20000; ++i) {
    seen.insert(KarpRabinFingerprint("label_" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 20000u);
}

TEST(TupleFingerprintTest, OrderSensitive) {
  LabelHash a = KarpRabinFingerprint("a");
  LabelHash b = KarpRabinFingerprint("b");
  LabelHash t1[] = {a, b};
  LabelHash t2[] = {b, a};
  EXPECT_NE(FingerprintLabelTuple(t1, 2), FingerprintLabelTuple(t2, 2));
}

TEST(TupleFingerprintTest, LengthSensitive) {
  LabelHash a = KarpRabinFingerprint("a");
  LabelHash t1[] = {a};
  LabelHash t2[] = {a, kNullLabelHash};
  EXPECT_NE(FingerprintLabelTuple(t1, 1), FingerprintLabelTuple(t2, 2));
}

TEST(TupleFingerprintTest, IncrementalMatchesBatch) {
  LabelHash t[] = {KarpRabinFingerprint("x"), kNullLabelHash,
                   KarpRabinFingerprint("y")};
  TupleFingerprinter fp;
  for (LabelHash h : t) fp.Add(h);
  EXPECT_EQ(fp.Finish(), FingerprintLabelTuple(t, 3));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t u = rng.Uniform(-5, 5);
    EXPECT_GE(u, -5);
    EXPECT_LE(u, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, WeightedPickRespectsZeroWeights) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    int pick = rng.WeightedPick({0.0, 1.0, 0.0});
    EXPECT_EQ(pick, 1);
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(13);
  int low = 0;
  for (int i = 0; i < 2000; ++i) {
    int z = rng.Zipf(100, 1.2);
    EXPECT_GE(z, 0);
    EXPECT_LT(z, 100);
    if (z < 10) ++low;
  }
  EXPECT_GT(low, 1000);  // heavy head
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(SerdeTest, RoundTripPrimitives) {
  ByteWriter w;
  w.PutU8(250);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutVarint(0);
  w.PutVarint(127);
  w.PutVarint(128);
  w.PutVarint(uint64_t{1} << 62);
  w.PutSignedVarint(-1);
  w.PutSignedVarint(1LL << 40);
  w.PutString("hello");
  w.PutString("");

  ByteReader r(w.data());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t s64;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  EXPECT_EQ(u8, 250);
  ASSERT_TRUE(r.GetU32(&u32).ok());
  EXPECT_EQ(u32, 0xdeadbeefu);
  ASSERT_TRUE(r.GetU64(&u64).ok());
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  for (uint64_t want : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                        uint64_t{1} << 62}) {
    ASSERT_TRUE(r.GetVarint(&u64).ok());
    EXPECT_EQ(u64, want);
  }
  ASSERT_TRUE(r.GetSignedVarint(&s64).ok());
  EXPECT_EQ(s64, -1);
  ASSERT_TRUE(r.GetSignedVarint(&s64).ok());
  EXPECT_EQ(s64, 1LL << 40);
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncatedInputsFail) {
  ByteReader r1(std::string_view("\x01"));
  uint32_t u32;
  EXPECT_FALSE(r1.GetU32(&u32).ok());

  // Varint with continuation bit but no next byte.
  ByteReader r2(std::string_view("\xff"));
  uint64_t u64;
  EXPECT_FALSE(r2.GetVarint(&u64).ok());

  // String length longer than the remaining bytes.
  ByteWriter w;
  w.PutVarint(100);
  w.PutU8('x');
  ByteReader r3(w.data());
  std::string s;
  EXPECT_FALSE(r3.GetString(&s).ok());
}

TEST(SerdeTest, OverlongVarintRejected) {
  std::string bad(11, '\x80');
  ByteReader r(bad);
  uint64_t v;
  EXPECT_FALSE(r.GetVarint(&v).ok());
}

TEST(SerdeTest, MaxVarintRoundTrips) {
  ByteWriter w;
  w.PutVarint(~uint64_t{0});
  EXPECT_EQ(w.data().size(), 10u);  // canonical 10-byte encoding
  ByteReader r(w.data());
  uint64_t v = 0;
  ASSERT_TRUE(r.GetVarint(&v).ok());
  EXPECT_EQ(v, ~uint64_t{0});
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, VarintOverflowBitsRejected) {
  // Ten bytes whose tenth carries payload above bit 63: decoding must
  // fail instead of silently dropping the high bits.
  std::string bad(9, '\xff');
  bad.push_back('\x02');  // bit 64
  ByteReader r(bad);
  uint64_t v;
  Status status = r.GetVarint(&v);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);

  // Same but with every overflow payload bit set.
  std::string worse(9, '\xff');
  worse.push_back('\x7e');
  ByteReader r2(worse);
  EXPECT_FALSE(r2.GetVarint(&v).ok());
}

TEST(SerdeTest, TenBytePatternsNeverCrash) {
  // Exhaustive final-byte sweep over a maximal prefix: every outcome must
  // be a clean Status (value or error), never UB or a wrong silent value.
  for (int last = 0; last < 256; ++last) {
    std::string buf(9, '\xff');
    buf.push_back(static_cast<char>(last));
    ByteReader r(buf);
    uint64_t v;
    Status status = r.GetVarint(&v);
    bool has_overflow_payload = (last & 0x7e) != 0;
    bool continues = (last & 0x80) != 0;
    if (continues || has_overflow_payload) {
      EXPECT_FALSE(status.ok()) << "last byte " << last;
    } else {
      EXPECT_TRUE(status.ok()) << "last byte " << last;
    }
  }
}

TEST(SerdeTest, SignedVarintTruncationFails) {
  ByteWriter w;
  w.PutSignedVarint(-123456789);
  for (size_t keep = 0; keep + 1 < w.data().size(); ++keep) {
    ByteReader r(std::string_view(w.data()).substr(0, keep));
    int64_t v;
    EXPECT_FALSE(r.GetSignedVarint(&v).ok()) << "prefix " << keep;
  }
}

TEST(SerdeTest, HugeStringLengthPrefixFails) {
  // Length prefix of UINT64_MAX with a few bytes of payload: must error,
  // not allocate or read out of bounds.
  ByteWriter w;
  w.PutVarint(~uint64_t{0});
  w.PutU8('x');
  ByteReader r(w.data());
  std::string s;
  EXPECT_FALSE(r.GetString(&s).ok());
}

TEST(SerdeTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/pqidx_serde_test.bin";
  std::string payload = "binary\0data", read_back;
  payload.push_back('\xff');
  ASSERT_TRUE(WriteFile(path, payload).ok());
  ASSERT_TRUE(ReadFile(path, &read_back).ok());
  EXPECT_EQ(read_back, payload);
}

TEST(SerdeTest, MissingFileFails) {
  std::string out;
  EXPECT_FALSE(ReadFile("/nonexistent/pqidx/file", &out).ok());
}

}  // namespace
}  // namespace pqidx
