// Tests for approximate joins and top-k lookups.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "core/join.h"
#include "edit/edit_script.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

void ExpectSameJoin(const std::vector<JoinResult>& a,
                    const std::vector<JoinResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].left, b[i].left);
    EXPECT_EQ(a[i].right, b[i].right);
    EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance);
  }
}

TEST(JoinTest, SmallDeterministicJoin) {
  PqShape shape{2, 2};
  ForestIndex left(shape), right(shape);
  left.AddTree(1, MustParse("a(b,c)"));
  left.AddTree(2, MustParse("x(y)"));
  right.AddTree(10, MustParse("a(b,c)"));
  right.AddTree(11, MustParse("a(b,z)"));
  right.AddTree(12, MustParse("q(r,s)"));

  // dist(a(b,c), a(b,z)) for 2,2-grams: 2 of 5 tuples shared -> 0.6.
  std::vector<JoinResult> pairs = NestedLoopJoin(left, right, 0.7);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].left, 1);
  EXPECT_EQ(pairs[0].right, 10);
  EXPECT_DOUBLE_EQ(pairs[0].distance, 0.0);
  EXPECT_EQ(pairs[1].left, 1);
  EXPECT_EQ(pairs[1].right, 11);
  EXPECT_DOUBLE_EQ(pairs[1].distance, 0.6);
  ExpectSameJoin(pairs, IndexJoin(left, right, 0.7));
  // A tighter threshold keeps only the exact match.
  EXPECT_EQ(IndexJoin(left, right, 0.5).size(), 1u);
}

TEST(JoinTest, IndexJoinMatchesNestedLoopOnRandomForests) {
  Rng rng(1);
  PqShape shape{3, 3};
  auto dict = std::make_shared<LabelDict>();
  ForestIndex left(shape), right(shape);
  // Half the right side derives from left documents (real match pairs).
  std::vector<Tree> docs;
  for (TreeId id = 0; id < 12; ++id) {
    docs.push_back(GenerateXmarkLike(dict, &rng, 120));
    left.AddTree(id, docs.back());
  }
  for (TreeId id = 0; id < 12; ++id) {
    if (id % 2 == 0) {
      Tree twin = docs[id].Clone();
      EditLog log;
      GenerateEditScript(&twin, &rng, 4, EditScriptOptions{}, &log);
      right.AddTree(100 + id, twin);
    } else {
      right.AddTree(100 + id, GenerateXmarkLike(dict, &rng, 120));
    }
  }
  for (double tau : {0.2, 0.5, 0.9, 1.0}) {
    ExpectSameJoin(NestedLoopJoin(left, right, tau),
                   IndexJoin(left, right, tau));
  }
  // The perturbed twins are found at a moderate threshold.
  std::vector<JoinResult> pairs = IndexJoin(left, right, 0.35);
  int twins_found = 0;
  for (const JoinResult& pair : pairs) {
    if (pair.right == 100 + pair.left && pair.left % 2 == 0) ++twins_found;
  }
  EXPECT_EQ(twins_found, 6);
}

TEST(JoinTest, SelfJoinFindsDuplicatePairsOnce) {
  PqShape shape{2, 2};
  ForestIndex forest(shape);
  forest.AddTree(1, MustParse("a(b,c)"));
  forest.AddTree(2, MustParse("a(b,c)"));
  forest.AddTree(3, MustParse("z(w)"));
  std::vector<JoinResult> pairs = SelfJoin(forest, 0.1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].left, 1);
  EXPECT_EQ(pairs[0].right, 2);
  EXPECT_DOUBLE_EQ(pairs[0].distance, 0.0);
}

TEST(JoinTest, EmptyForestsJoinToNothing) {
  PqShape shape{2, 2};
  ForestIndex left(shape), right(shape);
  left.AddTree(1, MustParse("a"));
  EXPECT_TRUE(NestedLoopJoin(left, right, 1.0).empty());
  EXPECT_TRUE(IndexJoin(left, right, 1.0).empty());
  EXPECT_TRUE(SelfJoin(right, 1.0).empty());
}

TEST(TopKTest, ReturnsClosestKInOrder) {
  Rng rng(2);
  PqShape shape{3, 3};
  auto dict = std::make_shared<LabelDict>();
  ForestIndex forest(shape);
  Tree base = GenerateXmarkLike(dict, &rng, 150);
  forest.AddTree(0, base);
  for (TreeId id = 1; id <= 8; ++id) {
    Tree variant = base.Clone();
    EditLog log;
    GenerateEditScript(&variant, &rng, id * 5, EditScriptOptions{}, &log);
    forest.AddTree(id, variant);
  }
  std::vector<LookupResult> top3 = forest.TopK(base, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].tree_id, 0);
  EXPECT_DOUBLE_EQ(top3[0].distance, 0.0);
  EXPECT_LE(top3[0].distance, top3[1].distance);
  EXPECT_LE(top3[1].distance, top3[2].distance);

  // The inverted index returns the same ranking.
  InvertedForestIndex inverted(forest);
  std::vector<LookupResult> inv3 = inverted.TopK(BuildIndex(base, shape), 3);
  ASSERT_EQ(inv3.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(inv3[i].tree_id, top3[i].tree_id);
    EXPECT_DOUBLE_EQ(inv3[i].distance, top3[i].distance);
  }
}

TEST(TopKTest, KLargerThanForest) {
  PqShape shape{2, 2};
  ForestIndex forest(shape);
  forest.AddTree(1, MustParse("a(b)"));
  forest.AddTree(2, MustParse("x(y)"));
  Tree query = MustParse("a(b)");
  EXPECT_EQ(forest.TopK(query, 10).size(), 2u);
  EXPECT_TRUE(forest.TopK(query, 0).empty());
}

}  // namespace
}  // namespace pqidx
