// Tests for the workload generators (random / XMark-like / DBLP-like).

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "tree/generators.h"
#include "tree/tree.h"

namespace pqidx {
namespace {

TEST(RandomTreeTest, SizeAndConsistency) {
  Rng rng(1);
  RandomTreeOptions options;
  options.num_nodes = 200;
  Tree tree = GenerateRandomTree(nullptr, &rng, options);
  tree.CheckConsistency();
  EXPECT_EQ(tree.size(), 200);
}

TEST(RandomTreeTest, SingleNode) {
  Rng rng(2);
  RandomTreeOptions options;
  options.num_nodes = 1;
  Tree tree = GenerateRandomTree(nullptr, &rng, options);
  EXPECT_EQ(tree.size(), 1);
  EXPECT_TRUE(tree.IsLeaf(tree.root()));
}

TEST(RandomTreeTest, MaxFanoutRespected) {
  Rng rng(3);
  RandomTreeOptions options;
  options.num_nodes = 500;
  options.max_fanout = 3;
  Tree tree = GenerateRandomTree(nullptr, &rng, options);
  tree.PreOrder([&](NodeId n) { EXPECT_LE(tree.fanout(n), 3); });
}

TEST(RandomTreeTest, DeterministicFromSeed) {
  RandomTreeOptions options;
  options.num_nodes = 50;
  Rng rng1(77), rng2(77);
  Tree t1 = GenerateRandomTree(nullptr, &rng1, options);
  Tree t2 = GenerateRandomTree(nullptr, &rng2, options);
  std::string n1, n2;
  t1.PreOrder([&](NodeId n) { n1 += t1.LabelString(n) + ","; });
  t2.PreOrder([&](NodeId n) { n2 += t2.LabelString(n) + ","; });
  EXPECT_EQ(n1, n2);
}

TEST(XmarkLikeTest, ApproximatesRequestedSize) {
  Rng rng(4);
  Tree tree = GenerateXmarkLike(nullptr, &rng, 5000);
  tree.CheckConsistency();
  EXPECT_GE(tree.size(), 5000);
  EXPECT_LT(tree.size(), 5400);  // overshoot bounded by one record
  EXPECT_EQ(tree.LabelString(tree.root()), "site");
  EXPECT_EQ(tree.fanout(tree.root()), 6);  // the six XMark sections
}

TEST(XmarkLikeTest, SharedDictionaryAcrossDocuments) {
  auto dict = std::make_shared<LabelDict>();
  Rng rng(5);
  Tree t1 = GenerateXmarkLike(dict, &rng, 500);
  Tree t2 = GenerateXmarkLike(dict, &rng, 500);
  EXPECT_EQ(t1.label(t1.root()), t2.label(t2.root()));
}

TEST(DblpLikeTest, RecordCountAndShape) {
  Rng rng(6);
  Tree tree = GenerateDblpLike(nullptr, &rng, 1000);
  tree.CheckConsistency();
  EXPECT_EQ(tree.LabelString(tree.root()), "dblp");
  // The structural signature: a flat, huge-fanout root.
  EXPECT_EQ(tree.fanout(tree.root()), 1000);
  // Records average roughly 8-14 nodes.
  EXPECT_GT(tree.size(), 8000);
  EXPECT_LT(tree.size(), 15000);
}

TEST(DblpLikeTest, RecordsAreShallow) {
  Rng rng(7);
  Tree tree = GenerateDblpLike(nullptr, &rng, 50);
  int max_depth = 0;
  tree.PreOrder([&](NodeId n) {
    int depth = 0;
    for (NodeId c = n; c != tree.root(); c = tree.parent(c)) ++depth;
    max_depth = std::max(max_depth, depth);
  });
  EXPECT_LE(max_depth, 3);  // dblp / record / field / text
}

}  // namespace
}  // namespace pqidx
