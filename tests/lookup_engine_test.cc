// Tests for the read-optimized lookup engine: bit-identical equivalence
// with ForestIndex::Lookup / InvertedForestIndex::Lookup across tau
// sweeps (including tau >= 1 and empty bags), TopK equivalence, edit-log
// evolution, pruning accounting, and concurrent lookups racing snapshot
// swaps (run under TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/inverted_index.h"
#include "core/lookup_engine.h"
#include "core/simd_intersect.h"
#include "edit/edit_script.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

constexpr double kTaus[] = {0.0, 0.1, 0.3, 0.5, 0.7, 0.9,
                            0.99, 1.0, 1.5};

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

// Bit-identical: same ids, same order, same double bit patterns.
void ExpectSameResults(const std::vector<LookupResult>& got,
                       const std::vector<LookupResult>& want,
                       const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].tree_id, want[i].tree_id) << what << " position " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << what << " position " << i;
  }
}

// Checks one engine snapshot against the scan for every tau in the sweep,
// with 1..n shards, sequentially and through a pool.
void ExpectEngineMatchesScan(const ForestIndex& forest,
                             const PqGramIndex& query, ThreadPool* pool) {
  for (int shards : {1, 3, 8}) {
    auto engine = LookupEngine::Build(forest, shards);
    ASSERT_EQ(engine->size(), forest.size());
    for (double tau : kTaus) {
      std::vector<LookupResult> want = forest.Lookup(query, tau);
      ExpectSameResults(engine->Lookup(query, tau), want, "sequential");
      if (pool != nullptr) {
        ExpectSameResults(engine->Lookup(query, tau, pool), want,
                          "parallel");
      }
    }
  }
}

TEST(LookupEngineTest, MatchesScanOnSmallForest) {
  ForestIndex forest(PqShape{2, 2});
  forest.AddTree(1, MustParse("a(b,c)"));
  forest.AddTree(2, MustParse("a(b,x)"));
  forest.AddTree(3, MustParse("z(w)"));
  InvertedForestIndex inverted(forest);

  Tree query = MustParse("a(b,c)");
  PqGramIndex bag = BuildIndex(query, PqShape{2, 2});
  ThreadPool pool(3);
  ExpectEngineMatchesScan(forest, bag, &pool);

  // Building from the inverted postings yields the same snapshot.
  auto from_inverted = LookupEngine::Build(inverted, 2);
  for (double tau : kTaus) {
    ExpectSameResults(from_inverted->Lookup(bag, tau),
                      forest.Lookup(bag, tau), "from inverted");
  }
}

TEST(LookupEngineTest, EmptyEngineAndEmptyBags) {
  const PqShape shape{2, 3};
  ForestIndex forest(shape);
  auto empty_engine = LookupEngine::Build(forest, 4);
  EXPECT_EQ(empty_engine->size(), 0);
  EXPECT_TRUE(empty_engine->Lookup(PqGramIndex(shape), 1.0).empty());
  EXPECT_TRUE(empty_engine->TopK(PqGramIndex(shape), 5).empty());

  // A forest mixing empty and non-empty bags: two empty bags are at
  // distance 0 (union 0), an empty vs non-empty bag at distance 1.
  forest.AddIndex(7, PqGramIndex(shape));
  forest.AddIndex(9, PqGramIndex(shape));
  Rng rng(3);
  auto dict = std::make_shared<LabelDict>();
  for (TreeId id = 0; id < 6; ++id) {
    forest.AddTree(id, GenerateDblpLike(dict, &rng, 30));
  }

  const PqGramIndex empty_query(shape);
  const PqGramIndex full_query =
      BuildIndex(GenerateDblpLike(dict, &rng, 30), shape);
  ThreadPool pool(2);
  ExpectEngineMatchesScan(forest, empty_query, &pool);
  ExpectEngineMatchesScan(forest, full_query, &pool);

  // The empty query must find exactly the two empty-bag trees at tau 0.
  auto engine = LookupEngine::Build(forest, 2);
  std::vector<LookupResult> hits = engine->Lookup(empty_query, 0.0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].tree_id, 7);
  EXPECT_EQ(hits[1].tree_id, 9);
  EXPECT_EQ(hits[0].distance, 0.0);

  // The inverted index agrees on the empty-query edge case too.
  InvertedForestIndex inverted(forest);
  for (double tau : kTaus) {
    ExpectSameResults(inverted.Lookup(empty_query, tau),
                      forest.Lookup(empty_query, tau), "inverted empty");
  }
}

// Distances are never negative, so tau < 0 (however hostile: -inf, a
// huge negative, NaN) matches nothing -- on every structure, without
// hanging, aborting, or tripping UB. The forest includes an empty bag
// and the sweep an empty query, the one pair whose distance-0 result
// used to be appended unconditionally.
TEST(LookupEngineTest, HostileTauMatchesScanExactly) {
  const PqShape shape{2, 2};
  ForestIndex forest(shape);
  forest.AddIndex(3, PqGramIndex(shape));
  forest.AddTree(1, MustParse("a(b,c)"));
  forest.AddTree(2, MustParse("a(b,x)"));
  InvertedForestIndex inverted(forest);
  auto engine = LookupEngine::Build(forest, 2);
  ThreadPool pool(2);

  const double hostile[] = {-0.5, -1.0, -1e308,
                            -std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::quiet_NaN()};
  const PqGramIndex queries[] = {BuildIndex(MustParse("a(b,c)"), shape),
                                 PqGramIndex(shape)};
  for (const PqGramIndex& query : queries) {
    for (double tau : hostile) {
      EXPECT_TRUE(forest.Lookup(query, tau).empty());
      EXPECT_TRUE(inverted.Lookup(query, tau).empty());
      EXPECT_TRUE(engine->Lookup(query, tau).empty());
      EXPECT_TRUE(engine->Lookup(query, tau, &pool).empty());
    }
  }
}

// Posting counts above INT32_MAX (legitimately reachable by
// accumulating edit deltas) must compile -- a live server republishes
// snapshots from such forests -- and must score exactly, not clamped.
TEST(LookupEngineTest, CountsBeyondInt32CompileAndScoreExactly) {
  const PqShape shape{2, 2};
  const int64_t kWide = int64_t{3} << 31;  // > INT32_MAX
  Tree doc = MustParse("a(b,c)");
  PqGramIndex huge = BuildIndex(doc, shape);
  const PqGramFingerprint fp = huge.counts().begin()->first;
  huge.Add(fp, kWide);

  ForestIndex forest(shape);
  forest.AddIndex(1, huge);
  forest.AddTree(2, MustParse("a(b,x)"));
  InvertedForestIndex inverted(forest);

  // The query's multiplicity for `fp` also exceeds int32, so
  // min(qcount, count) is decided by the exact wide count: a clamp at
  // INT32_MAX would shift the distance and fail the bit-identity check.
  PqGramIndex query = BuildIndex(doc, shape);
  query.Add(fp, kWide + 12345);

  ThreadPool pool(2);
  ExpectEngineMatchesScan(forest, query, &pool);
  ExpectEngineMatchesScan(forest, BuildIndex(doc, shape), &pool);
  auto engine = LookupEngine::Build(inverted, 2);
  for (double tau : kTaus) {
    ExpectSameResults(engine->Lookup(query, tau), forest.Lookup(query, tau),
                      "wide counts from inverted");
  }
  ExpectSameResults(engine->TopK(query, 2), forest.TopK(query, 2),
                    "wide counts topk");
}

TEST(LookupEngineTest, ThreeWayEquivalenceOnRandomForests) {
  Rng rng(17);
  auto dict = std::make_shared<LabelDict>();
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    const PqShape shape{2 + round % 2, 2 + round};
    ForestIndex forest(shape);
    InvertedForestIndex inverted(shape);
    const int trees = 20 + 15 * round;
    for (TreeId id = 0; id < trees; ++id) {
      Tree doc = round % 2 == 0 ? GenerateXmarkLike(dict, &rng, 120)
                                : GenerateDblpLike(dict, &rng, 80);
      forest.AddTree(id, doc);
      inverted.AddTree(id, doc);
    }
    inverted.CheckConsistency();

    for (int trial = 0; trial < 4; ++trial) {
      PqGramIndex query = BuildIndex(
          GenerateXmarkLike(dict, &rng, 120), shape);
      ExpectEngineMatchesScan(forest, query, &pool);
      auto engine = LookupEngine::Build(inverted, 5);
      for (double tau : kTaus) {
        std::vector<LookupResult> want = forest.Lookup(query, tau);
        ExpectSameResults(inverted.Lookup(query, tau), want, "inverted");
        ExpectSameResults(engine->Lookup(query, tau, &pool), want,
                          "engine from inverted");
      }
    }
  }
}

TEST(LookupEngineTest, StaysEquivalentAcrossEditLogEvolution) {
  Rng rng(29);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{2, 3};
  ForestIndex forest(shape);
  InvertedForestIndex inverted(shape);
  std::vector<Tree> docs;
  for (TreeId id = 0; id < 12; ++id) {
    docs.push_back(GenerateDblpLike(dict, &rng, 60));
    forest.AddTree(id, docs.back());
    inverted.AddTree(id, docs.back());
  }

  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    // Edit a few documents through the incremental path on both
    // maintainable structures, then recompile the snapshot.
    for (int e = 0; e < 4; ++e) {
      const TreeId id = static_cast<TreeId>(rng.NextBounded(docs.size()));
      EditLog log;
      GenerateEditScript(&docs[id], &rng, 12, EditScriptOptions{}, &log);
      ASSERT_TRUE(forest.ApplyLog(id, docs[id], log).ok());
      ASSERT_TRUE(inverted.ApplyLog(id, docs[id], log).ok());
    }
    inverted.CheckConsistency();

    PqGramIndex query = BuildIndex(
        docs[rng.NextBounded(docs.size())], shape);
    auto engine = LookupEngine::Build(inverted, 1 + round);
    for (double tau : kTaus) {
      std::vector<LookupResult> want = forest.Lookup(query, tau);
      ExpectSameResults(inverted.Lookup(query, tau), want, "inverted");
      ExpectSameResults(engine->Lookup(query, tau, &pool), want, "engine");
    }
  }
}

TEST(LookupEngineTest, TopKMatchesForestIndex) {
  Rng rng(41);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{2, 3};
  ForestIndex forest(shape);
  for (TreeId id = 0; id < 40; ++id) {
    forest.AddTree(id, GenerateXmarkLike(dict, &rng, 90));
  }
  ThreadPool pool(4);
  for (int shards : {1, 4}) {
    auto engine = LookupEngine::Build(forest, shards);
    for (int trial = 0; trial < 3; ++trial) {
      PqGramIndex query = BuildIndex(
          GenerateXmarkLike(dict, &rng, 90), shape);
      for (int k : {0, 1, 3, 10, 40, 100}) {
        std::vector<LookupResult> want = forest.TopK(query, k);
        ExpectSameResults(engine->TopK(query, k), want, "topk sequential");
        ExpectSameResults(engine->TopK(query, k, &pool), want,
                          "topk parallel");
      }
    }
  }
}

TEST(LookupEngineTest, PruningStatsAccounting) {
  Rng rng(53);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{2, 3};
  ForestIndex forest(shape);
  for (TreeId id = 0; id < 60; ++id) {
    forest.AddTree(id, GenerateXmarkLike(dict, &rng, 100));
  }
  auto engine = LookupEngine::Build(forest, 4);
  EXPECT_GT(engine->posting_entries(), 0);
  PqGramIndex query = BuildIndex(
      GenerateXmarkLike(dict, &rng, 100), shape);

  // Selective tau: every candidate is either pruned mid-accumulation or
  // reaches the final test; nothing is double-counted.
  LookupEngineStats selective;
  engine->Lookup(query, 0.2, nullptr, &selective);
  EXPECT_GT(selective.candidates, 0);
  EXPECT_GT(selective.postings_scanned, 0);
  EXPECT_EQ(selective.pruned + selective.scored, selective.candidates);

  // tau >= 1 admits everything: no pruning, every tree scored.
  LookupEngineStats everything;
  std::vector<LookupResult> all = engine->Lookup(query, 1.0, nullptr,
                                                 &everything);
  EXPECT_EQ(all.size(), static_cast<size_t>(forest.size()));
  EXPECT_EQ(everything.pruned, 0);
  EXPECT_EQ(everything.scored, forest.size());

  // A tighter tau never scores more candidates than a looser one.
  LookupEngineStats loose;
  engine->Lookup(query, 0.8, nullptr, &loose);
  EXPECT_LE(selective.scored, loose.scored);
}

// Incremental snapshot maintenance: a randomized edit log evolves the
// forest (updates, inserts, removals, re-inserts) while ApplyDelta
// chains snapshot to snapshot; every epoch must stay result-identical
// to a from-scratch Build AND to the scan, across the full tau sweep.
TEST(LookupEngineTest, ApplyDeltaTracksEditLogEvolution) {
  Rng rng(83);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{2, 3};
  ForestIndex forest(shape);
  std::map<TreeId, Tree> docs;
  for (TreeId id = 0; id < 14; ++id) {
    Tree doc = GenerateDblpLike(dict, &rng, 50);
    forest.AddTree(id, doc);
    docs.insert_or_assign(id, std::move(doc));
  }

  ThreadPool pool(3);
  auto engine = LookupEngine::Build(forest, 4);
  TreeId next_id = 14;
  for (int round = 0; round < 8; ++round) {
    std::vector<TreeId> changed;
    // Update a few documents through their edit logs.
    for (int e = 0; e < 3; ++e) {
      auto it = docs.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(docs.size())));
      EditLog log;
      GenerateEditScript(&it->second, &rng, 10, EditScriptOptions{}, &log);
      ASSERT_TRUE(forest.ApplyLog(it->first, it->second, log).ok());
      changed.push_back(it->first);
    }
    // Remove one tree (the changed list carries the id; ApplyDelta sees
    // it absent from the forest) and insert a brand-new one.
    if (round % 2 == 0 && docs.size() > 4) {
      auto it = docs.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(docs.size())));
      ASSERT_TRUE(forest.RemoveTree(it->first));
      changed.push_back(it->first);
      docs.erase(it);
    }
    {
      Tree doc = GenerateDblpLike(dict, &rng, 50);
      forest.AddTree(next_id, doc);
      changed.push_back(next_id);
      docs.insert_or_assign(next_id, std::move(doc));
      ++next_id;
    }

    engine = LookupEngine::ApplyDelta(engine, forest, changed);
    ASSERT_EQ(engine->size(), forest.size());
    auto rebuilt = LookupEngine::Build(forest, 4);
    ASSERT_EQ(engine->posting_entries(), rebuilt->posting_entries());

    PqGramIndex query =
        BuildIndex(docs.begin()->second, shape);
    for (double tau : kTaus) {
      std::vector<LookupResult> want = forest.Lookup(query, tau);
      ExpectSameResults(engine->Lookup(query, tau), want, "incremental");
      ExpectSameResults(engine->Lookup(query, tau, &pool), want,
                        "incremental parallel");
      ExpectSameResults(rebuilt->Lookup(query, tau), want, "rebuilt");
    }
    ExpectSameResults(engine->TopK(query, 5), forest.TopK(query, 5),
                      "incremental topk");
  }
}

// ApplyDelta edge cases: identity on an empty changed list, full-build
// fallback from an empty snapshot, evolution down to an empty forest and
// back, and shards whose counts exceed int32 surviving recompilation.
TEST(LookupEngineTest, ApplyDeltaEdgeCasesAndWideCounts) {
  const PqShape shape{2, 2};
  const int64_t kWide = int64_t{3} << 31;  // > INT32_MAX
  ForestIndex forest(shape);
  auto engine = LookupEngine::Build(forest, 3);

  // Empty changed list: the same snapshot comes back.
  EXPECT_EQ(LookupEngine::ApplyDelta(engine, forest, {}).get(),
            engine.get());

  // Empty previous snapshot: falls back to a full build.
  Tree doc = MustParse("a(b,c)");
  PqGramIndex huge = BuildIndex(doc, shape);
  const PqGramFingerprint fp = huge.counts().begin()->first;
  huge.Add(fp, kWide);
  forest.AddIndex(1, huge);
  forest.AddTree(2, MustParse("a(b,x)"));
  forest.AddIndex(3, PqGramIndex(shape));  // empty bag rides along
  engine = LookupEngine::ApplyDelta(engine, forest, {1, 2, 3});
  ASSERT_EQ(engine->size(), 3);

  PqGramIndex query = BuildIndex(doc, shape);
  query.Add(fp, kWide + 12345);
  ThreadPool pool(2);
  for (double tau : kTaus) {
    ExpectSameResults(engine->Lookup(query, tau), forest.Lookup(query, tau),
                      "wide counts via ApplyDelta");
  }
  const double hostile[] = {-0.5, -1.0, -1e308,
                            -std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::quiet_NaN()};
  for (double tau : hostile) {
    EXPECT_TRUE(engine->Lookup(query, tau).empty());
    EXPECT_TRUE(engine->Lookup(query, tau, &pool).empty());
  }

  // Evolve the wide-count bag (still wide) through another delta.
  huge.Add(fp, 7);
  forest.AddIndex(1, huge);
  engine = LookupEngine::ApplyDelta(engine, forest, {1});
  for (double tau : kTaus) {
    ExpectSameResults(engine->Lookup(query, tau), forest.Lookup(query, tau),
                      "wide counts evolved");
  }

  // Remove everything, then repopulate from the empty snapshot.
  ASSERT_TRUE(forest.RemoveTree(1));
  ASSERT_TRUE(forest.RemoveTree(2));
  ASSERT_TRUE(forest.RemoveTree(3));
  engine = LookupEngine::ApplyDelta(engine, forest, {1, 2, 3});
  ASSERT_EQ(engine->size(), 0);
  EXPECT_TRUE(engine->Lookup(query, 1.0).empty());
  forest.AddTree(9, MustParse("a(b,c)"));
  engine = LookupEngine::ApplyDelta(engine, forest, {9});
  ASSERT_EQ(engine->size(), 1);
  for (double tau : kTaus) {
    ExpectSameResults(engine->Lookup(query, tau), forest.Lookup(query, tau),
                      "repopulated from empty");
  }
}

// Named to run in the TSan CI job: readers race an engine-swapping
// writer through the same shared_ptr slot pqidxd uses.
TEST(LookupEngineParallelTest, ConcurrentLookupsDuringSnapshotSwaps) {
  Rng rng(67);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{2, 3};
  ForestIndex forest(shape);
  std::vector<Tree> docs;
  for (TreeId id = 0; id < 16; ++id) {
    docs.push_back(GenerateDblpLike(dict, &rng, 50));
    forest.AddTree(id, docs.back());
  }

  std::mutex engine_mutex;
  std::shared_ptr<const LookupEngine> engine = LookupEngine::Build(forest, 2);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> lookups_done{0};

  // Writer: keeps editing the forest and publishing fresh snapshots.
  std::thread writer([&] {
    Rng wrng(71);
    for (int round = 0; round < 40; ++round) {
      const TreeId id = static_cast<TreeId>(wrng.NextBounded(docs.size()));
      EditLog log;
      GenerateEditScript(&docs[id], &wrng, 6, EditScriptOptions{}, &log);
      ASSERT_TRUE(forest.ApplyLog(id, docs[id], log).ok());
      auto fresh = LookupEngine::Build(forest, 1 + round % 4);
      std::lock_guard<std::mutex> lock(engine_mutex);
      engine = std::move(fresh);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rrng(100 + r);
      auto query_doc = GenerateDblpLike(nullptr, &rrng, 50);
      PqGramIndex query = BuildIndex(query_doc, shape);
      while (!stop.load()) {
        std::shared_ptr<const LookupEngine> snapshot;
        {
          std::lock_guard<std::mutex> lock(engine_mutex);
          snapshot = engine;
        }
        // Scoring runs entirely on the private snapshot copy; the writer
        // may swap (and free the previous engine) at any point.
        std::vector<LookupResult> hits = snapshot->Lookup(query, 0.9);
        for (size_t i = 1; i < hits.size(); ++i) {
          ASSERT_TRUE(hits[i - 1].distance < hits[i].distance ||
                      (hits[i - 1].distance == hits[i].distance &&
                       hits[i - 1].tree_id < hits[i].tree_id));
        }
        lookups_done.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(lookups_done.load(), 0);

  // After the dust settles the final snapshot matches the final forest.
  PqGramIndex query = BuildIndex(docs[0], shape);
  for (double tau : kTaus) {
    ExpectSameResults(engine->Lookup(query, tau), forest.Lookup(query, tau),
                      "final snapshot");
  }
}

// Incremental variant: epochs chain through ApplyDelta, so consecutive
// snapshots SHARE untouched shards. Readers score shards the writer is
// concurrently sharing into new epochs and releasing from old ones --
// the exact aliasing pqidxd produces under pipelined commits (TSan job).
TEST(LookupEngineParallelTest, ConcurrentLookupsDuringIncrementalSwaps) {
  Rng rng(73);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{2, 3};
  ForestIndex forest(shape);
  std::vector<Tree> docs;
  for (TreeId id = 0; id < 16; ++id) {
    docs.push_back(GenerateDblpLike(dict, &rng, 50));
    forest.AddTree(id, docs.back());
  }

  std::mutex engine_mutex;
  std::shared_ptr<const LookupEngine> engine = LookupEngine::Build(forest, 4);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> lookups_done{0};

  std::thread writer([&] {
    Rng wrng(79);
    auto current = engine;
    for (int round = 0; round < 40; ++round) {
      const TreeId id = static_cast<TreeId>(wrng.NextBounded(docs.size()));
      EditLog log;
      GenerateEditScript(&docs[id], &wrng, 6, EditScriptOptions{}, &log);
      ASSERT_TRUE(forest.ApplyLog(id, docs[id], log).ok());
      current = LookupEngine::ApplyDelta(current, forest, {id});
      std::lock_guard<std::mutex> lock(engine_mutex);
      engine = current;
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rrng(200 + r);
      auto query_doc = GenerateDblpLike(nullptr, &rrng, 50);
      PqGramIndex query = BuildIndex(query_doc, shape);
      while (!stop.load()) {
        std::shared_ptr<const LookupEngine> snapshot;
        {
          std::lock_guard<std::mutex> lock(engine_mutex);
          snapshot = engine;
        }
        std::vector<LookupResult> hits = snapshot->Lookup(query, 0.9);
        for (size_t i = 1; i < hits.size(); ++i) {
          ASSERT_TRUE(hits[i - 1].distance < hits[i].distance ||
                      (hits[i - 1].distance == hits[i].distance &&
                       hits[i - 1].tree_id < hits[i].tree_id));
        }
        lookups_done.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(lookups_done.load(), 0);

  PqGramIndex query = BuildIndex(docs[0], shape);
  for (double tau : kTaus) {
    ExpectSameResults(engine->Lookup(query, tau), forest.Lookup(query, tau),
                      "final incremental snapshot");
  }
}

// Restores the process-wide kernel selection on scope exit so a failing
// SIMD test cannot leak a forced kernel into later tests.
class ScopedSimdKernel {
 public:
  ScopedSimdKernel() : saved_(ActiveSimdKernel()) {}
  ~ScopedSimdKernel() { SetSimdKernelForTesting(saved_); }
  ScopedSimdKernel(const ScopedSimdKernel&) = delete;
  ScopedSimdKernel& operator=(const ScopedSimdKernel&) = delete;

 private:
  SimdKernel saved_;
};

constexpr SimdKernel kAllKernels[] = {SimdKernel::kScalar, SimdKernel::kSse41,
                                      SimdKernel::kAvx2, SimdKernel::kNeon};

TEST(SimdIntersectTest, GallopLowerBoundMatchesStdLowerBound) {
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = rng.NextBounded(64);
    std::vector<uint64_t> data(n);
    for (uint64_t& v : data) v = rng.NextBounded(96);
    std::sort(data.begin(), data.end());
    const size_t begin = n == 0 ? 0 : rng.NextBounded(n + 1);
    // Probe present values, absent values, and the extremes.
    const uint64_t probes[] = {0, rng.NextBounded(100), 95, 96,
                               std::numeric_limits<uint64_t>::max()};
    for (uint64_t target : probes) {
      const size_t want =
          std::lower_bound(data.begin() + begin, data.end(), target) -
          data.begin();
      EXPECT_EQ(GallopLowerBound(data.data(), n, begin, target), want)
          << "n=" << n << " begin=" << begin << " target=" << target;
    }
  }
}

// ComputeContribs must agree with the obvious scalar loop on every
// supported kernel, across lengths that straddle every vector-tail
// boundary, with the kWideCount sentinel (-1) passed through intact.
TEST(SimdIntersectTest, ComputeContribsMatchesScalarReference) {
  ScopedSimdKernel restore;
  Rng rng(43);
  const int32_t qcounts[] = {0, 1, 7, std::numeric_limits<int32_t>::max()};
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{7}, size_t{8},
                   size_t{15}, size_t{16}, size_t{17}, size_t{33},
                   size_t{70}}) {
    std::vector<int32_t> pairs(2 * n);
    for (size_t i = 0; i < n; ++i) {
      pairs[2 * i] = static_cast<int32_t>(rng.NextBounded(1 << 20));
      // Mix small counts, INT32_MAX, and the wide-count sentinel.
      const uint64_t pick = rng.NextBounded(10);
      pairs[2 * i + 1] =
          pick == 0 ? -1
          : pick == 1
              ? std::numeric_limits<int32_t>::max()
              : static_cast<int32_t>(rng.NextBounded(1000));
    }
    for (int32_t qcount : qcounts) {
      std::vector<int32_t> want_slots(n), want_contribs(n);
      for (size_t i = 0; i < n; ++i) {
        want_slots[i] = pairs[2 * i];
        want_contribs[i] = std::min(pairs[2 * i + 1], qcount);
        if (pairs[2 * i + 1] == -1) want_contribs[i] = -1;
      }
      for (SimdKernel kernel : kAllKernels) {
        if (!SetSimdKernelForTesting(kernel)) continue;
        std::vector<int32_t> slots(n), contribs(n);
        ComputeContribs(pairs.data(), n, qcount, slots.data(),
                        contribs.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(slots[i], want_slots[i])
              << SimdKernelName(kernel) << " n=" << n << " i=" << i;
          ASSERT_EQ(contribs[i], want_contribs[i])
              << SimdKernelName(kernel) << " n=" << n << " i=" << i
              << " qcount=" << qcount;
        }
      }
    }
  }
}

// Every available kernel must produce results bit-identical to the
// forest scan AND to the forced-scalar engine, across random forests,
// the full tau sweep, hostile taus, wide counts, and TopK.
TEST(SimdIntersectTest, AllKernelsBitIdenticalToScalarOnRandomForests) {
  ScopedSimdKernel restore;
  Rng rng(47);
  auto dict = std::make_shared<LabelDict>();
  ThreadPool pool(4);

  const PqShape shape{2, 3};
  ForestIndex forest(shape);
  for (TreeId id = 0; id < 40; ++id) {
    Tree doc = id % 2 == 0 ? GenerateXmarkLike(dict, &rng, 100)
                           : GenerateDblpLike(dict, &rng, 70);
    forest.AddTree(id, doc);
  }
  // A wide-count bag so min(qcount, count) exercises the sentinel path.
  const int64_t kWide = int64_t{3} << 31;
  Tree wide_doc = MustParse("a(b,c)");
  PqGramIndex wide_bag = BuildIndex(wide_doc, shape);
  const PqGramFingerprint wide_fp = wide_bag.counts().begin()->first;
  wide_bag.Add(wide_fp, kWide);
  forest.AddIndex(1000, wide_bag);

  std::vector<PqGramIndex> queries;
  for (int q = 0; q < 3; ++q) {
    queries.push_back(BuildIndex(GenerateDblpLike(dict, &rng, 60), shape));
  }
  PqGramIndex wide_query = BuildIndex(wide_doc, shape);
  wide_query.Add(wide_fp, kWide + 999);
  queries.push_back(std::move(wide_query));
  queries.push_back(PqGramIndex(shape));

  const double hostile[] = {-0.5, -1e308,
                            -std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::quiet_NaN()};

  for (int shards : {1, 4}) {
    ASSERT_TRUE(SetSimdKernelForTesting(SimdKernel::kScalar));
    auto scalar_engine = LookupEngine::Build(forest, shards);
    for (SimdKernel kernel : kAllKernels) {
      // A rejected kernel (wrong architecture / missing CPU feature)
      // leaves the previous selection in place.
      if (!SetSimdKernelForTesting(kernel)) continue;
      auto engine = LookupEngine::Build(forest, shards);
      for (const PqGramIndex& query : queries) {
        for (double tau : kTaus) {
          std::vector<LookupResult> want = forest.Lookup(query, tau);
          ExpectSameResults(engine->Lookup(query, tau), want,
                            SimdKernelName(kernel));
          ExpectSameResults(engine->Lookup(query, tau, &pool), want,
                            SimdKernelName(kernel));
          // The snapshot built under the scalar kernel answers
          // identically when scored by this kernel (same arenas).
          ExpectSameResults(scalar_engine->Lookup(query, tau), want,
                            "scalar snapshot under forced kernel");
        }
        for (double tau : hostile) {
          EXPECT_TRUE(engine->Lookup(query, tau).empty())
              << SimdKernelName(kernel);
        }
        for (int k : {0, 1, 5, 100}) {
          ExpectSameResults(engine->TopK(query, k), forest.TopK(query, k),
                            SimdKernelName(kernel));
        }
      }
    }
  }
}

}  // namespace
}  // namespace pqidx
