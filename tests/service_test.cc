// Tests for the pqidxd service stack (src/service): wire protocol decode
// hardening, transport semantics, single-client correctness against the
// in-memory library, group-commit batching, admission control, and
// multi-client stress runs over both transports. The stress cases are
// TSan targets (see .github/workflows/ci.yml): concurrent lookups under
// the shared read lock race the group-commit leader by design.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "core/forest_index.h"
#include "core/incremental.h"
#include "edit/edit_script.h"
#include "service/client.h"
#include "service/server.h"
#include "service/transport.h"
#include "service/wire.h"
#include "storage/sharded_store.h"
#include "tree/generators.h"

namespace pqidx {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

using StorePtr = std::unique_ptr<ShardedStore>;

StorePtr MustCreate(const std::string& name, PqShape shape) {
  StatusOr<StorePtr> store =
      ShardedStore::Create(TempPath(name), shape);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

// --- wire protocol ------------------------------------------------------

TEST(WireTest, FrameHeaderRoundTrip) {
  FrameHeader header;
  header.type = MessageType::kLookup;
  header.flags = kFrameFlagResponse;
  header.request_id = 0x0123456789abcdefULL;
  std::string payload = "hello";
  header.payload_size = static_cast<uint32_t>(payload.size());
  std::string frame = EncodeFrame(header, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());

  FrameHeader decoded;
  ASSERT_TRUE(DecodeFrameHeader(
                  std::string_view(frame).substr(0, kFrameHeaderSize),
                  &decoded)
                  .ok());
  EXPECT_EQ(decoded.type, MessageType::kLookup);
  EXPECT_TRUE(decoded.is_response());
  EXPECT_EQ(decoded.request_id, header.request_id);
  EXPECT_EQ(decoded.payload_size, payload.size());
}

TEST(WireTest, FrameHeaderRejectsMalformedBytes) {
  FrameHeader valid;
  valid.type = MessageType::kPing;
  valid.request_id = 7;
  std::string good =
      EncodeFrame(valid, std::string_view()).substr(0, kFrameHeaderSize);
  FrameHeader out;
  ASSERT_TRUE(DecodeFrameHeader(good, &out).ok());

  // Truncated and over-long inputs.
  EXPECT_FALSE(DecodeFrameHeader(std::string_view(), &out).ok());
  EXPECT_FALSE(DecodeFrameHeader(good.substr(0, 19), &out).ok());
  EXPECT_FALSE(DecodeFrameHeader(good + "x", &out).ok());

  // Field-level corruption: magic, version, type, flags, reserved.
  auto corrupt = [&](size_t offset, char value) {
    std::string bad = good;
    bad[offset] = value;
    return DecodeFrameHeader(bad, &out);
  };
  EXPECT_FALSE(corrupt(0, 'X').ok());                 // magic
  EXPECT_FALSE(corrupt(4, 99).ok());                  // version
  EXPECT_FALSE(corrupt(5, 0).ok());                   // type below range
  EXPECT_FALSE(corrupt(5, 17).ok());                  // type above range
  EXPECT_FALSE(corrupt(6, 0x02).ok());                // unknown flag bit
  EXPECT_FALSE(corrupt(7, 1).ok());                   // reserved byte

  // Declared payload beyond the limit.
  std::string oversized = good;
  oversized[16] = '\xff';
  oversized[17] = '\xff';
  oversized[18] = '\xff';
  oversized[19] = '\xff';
  EXPECT_FALSE(DecodeFrameHeader(oversized, &out).ok());
}

TEST(WireTest, RequestPayloadRoundTrips) {
  const PqShape shape{2, 3};
  Rng rng(9);
  Tree tree = GenerateDblpLike(nullptr, &rng, 20);
  PqGramIndex bag = BuildIndex(tree, shape);

  {
    LookupRequest request;
    request.query = bag;
    request.tau = 0.75;
    ByteWriter writer;
    request.Encode(&writer);
    StatusOr<LookupRequest> decoded = LookupRequest::Decode(writer.data());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->query, bag);
    EXPECT_DOUBLE_EQ(decoded->tau, 0.75);
  }
  {
    TopKRequest request;
    request.query = bag;
    request.k = 17;
    ByteWriter writer;
    request.Encode(&writer);
    StatusOr<TopKRequest> decoded = TopKRequest::Decode(writer.data());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->query, bag);
    EXPECT_EQ(decoded->k, 17);
  }
  {
    AddTreeRequest request;
    request.tree_id = -12;
    request.bag = bag;
    ByteWriter writer;
    request.Encode(&writer);
    StatusOr<AddTreeRequest> decoded = AddTreeRequest::Decode(writer.data());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->tree_id, -12);
    EXPECT_EQ(decoded->bag, bag);
  }
  {
    ApplyEditsRequest request;
    request.tree_id = 3;
    request.plus = bag;
    request.minus = PqGramIndex(shape);
    request.log_ops = 11;
    ByteWriter writer;
    request.Encode(&writer);
    StatusOr<ApplyEditsRequest> decoded =
        ApplyEditsRequest::Decode(writer.data());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->tree_id, 3);
    EXPECT_EQ(decoded->plus, bag);
    EXPECT_EQ(decoded->minus.size(), 0);
    EXPECT_EQ(decoded->log_ops, 11);
  }
}

TEST(WireTest, RequestPayloadRejectsMalformedBytes) {
  // Trailing bytes after a valid payload.
  LookupRequest request;
  request.query = PqGramIndex(PqShape{2, 2});
  request.tau = 0.5;
  ByteWriter writer;
  request.Encode(&writer);
  std::string padded = std::string(writer.data()) + "extra";
  EXPECT_FALSE(LookupRequest::Decode(padded).ok());

  // Hostile tau: NaN, infinities, and negative values (including the
  // -inf / huge-negative payloads that would hang or overflow a naive
  // count filter) are all rejected at the wire boundary.
  const double bad_taus[] = {std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             -1e308, -0.001};
  for (double tau : bad_taus) {
    ByteWriter bad_writer;
    LookupRequest bad_request;
    bad_request.query = PqGramIndex(PqShape{2, 2});
    bad_request.tau = tau;
    bad_request.Encode(&bad_writer);
    StatusOr<LookupRequest> decoded = LookupRequest::Decode(bad_writer.data());
    EXPECT_FALSE(decoded.ok()) << "tau " << tau;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
        << "tau " << tau;
  }

  // Truncated bag.
  EXPECT_FALSE(
      AddTreeRequest::Decode(std::string_view(padded).substr(0, 3)).ok());
  EXPECT_FALSE(ApplyEditsRequest::Decode("\x01").ok());
}

TEST(WireTest, TopKRequestRejectsMalformedBytes) {
  Rng rng(13);
  TopKRequest request;
  request.query =
      BuildIndex(GenerateDblpLike(nullptr, &rng, 15), PqShape{2, 2});
  request.k = 25;
  ByteWriter writer;
  request.Encode(&writer);
  const std::string_view encoded = writer.data();

  // Every strict prefix of a valid payload is rejected, never accepted
  // with a partial bag or a default k.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(TopKRequest::Decode(encoded.substr(0, len)).ok())
        << "prefix length " << len;
  }
  // Trailing garbage after a valid payload is rejected too.
  EXPECT_FALSE(TopKRequest::Decode(std::string(encoded) + "x").ok());

  // Hostile k: negative and above the decode bound.
  for (int32_t k : {-1, -1000000, TopKRequest::kMaxK + 1,
                    std::numeric_limits<int32_t>::max()}) {
    TopKRequest bad;
    bad.query = request.query;
    bad.k = k;
    ByteWriter bad_writer;
    bad.Encode(&bad_writer);
    StatusOr<TopKRequest> decoded = TopKRequest::Decode(bad_writer.data());
    EXPECT_FALSE(decoded.ok()) << "k " << k;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
        << "k " << k;
  }
  // The bound itself is accepted.
  TopKRequest max_request;
  max_request.query = request.query;
  max_request.k = TopKRequest::kMaxK;
  ByteWriter max_writer;
  max_request.Encode(&max_writer);
  EXPECT_TRUE(TopKRequest::Decode(max_writer.data()).ok());
}

TEST(WireTest, StatusAndResponseRoundTrips) {
  {
    ByteWriter writer;
    EncodeStatus(UnavailableError("busy"), &writer);
    ByteReader reader(writer.data());
    Status out;
    ASSERT_TRUE(DecodeStatus(&reader, &out).ok());
    EXPECT_EQ(out.code(), StatusCode::kUnavailable);
    EXPECT_EQ(out.message(), "busy");
  }
  {
    LookupResponse response;
    response.results.push_back(LookupResult{4, 0.125});
    response.results.push_back(LookupResult{-2, 0.875});
    ByteWriter writer;
    response.Encode(&writer);
    ByteReader reader(writer.data());
    StatusOr<LookupResponse> decoded = LookupResponse::Decode(&reader);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->results.size(), 2u);
    EXPECT_EQ(decoded->results[0].tree_id, 4);
    EXPECT_DOUBLE_EQ(decoded->results[1].distance, 0.875);
  }
  {
    // A result count the payload cannot hold must be rejected before any
    // allocation is attempted.
    ByteWriter writer;
    writer.PutVarint(1u << 30);
    ByteReader reader(writer.data());
    EXPECT_FALSE(LookupResponse::Decode(&reader).ok());
  }
  {
    ServiceStats stats;
    stats.p = 2;
    stats.q = 3;
    stats.tree_count = 17;
    stats.lookups = 1000;
    stats.edits_applied = 64;
    stats.edit_commits = 9;
    stats.max_batch = 12;
    stats.rejected = 2;
    stats.protocol_errors = 1;
    stats.snapshot_epoch = 33;
    stats.candidates_pruned = 450;
    stats.candidates_scored = 120;
    stats.snapshot_rebuild_us = 9001;
    stats.last_rebuild_us = 77;
    ByteWriter writer;
    stats.Encode(&writer);
    ByteReader reader(writer.data());
    StatusOr<ServiceStats> decoded = ServiceStats::Decode(&reader);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->p, 2);
    EXPECT_EQ(decoded->q, 3);
    EXPECT_EQ(decoded->tree_count, 17);
    EXPECT_EQ(decoded->edits_applied, 64);
    EXPECT_EQ(decoded->edit_commits, 9);
    EXPECT_EQ(decoded->max_batch, 12);
    EXPECT_EQ(decoded->snapshot_epoch, 33);
    EXPECT_EQ(decoded->candidates_pruned, 450);
    EXPECT_EQ(decoded->candidates_scored, 120);
    EXPECT_EQ(decoded->snapshot_rebuild_us, 9001);
    EXPECT_EQ(decoded->last_rebuild_us, 77);
  }
}

// --- transport ----------------------------------------------------------

TEST(PipeTransportTest, BytesFlowBothWays) {
  auto [a, b] = MakePipePair();
  ASSERT_TRUE(a->Send("ping").ok());
  std::string got;
  ASSERT_TRUE(b->ReceiveExact(4, &got).ok());
  EXPECT_EQ(got, "ping");
  ASSERT_TRUE(b->Send("pong!").ok());
  ASSERT_TRUE(a->ReceiveExact(5, &got).ok());
  EXPECT_EQ(got, "pong!");
}

TEST(PipeTransportTest, CloseSemantics) {
  auto [a, b] = MakePipePair();
  ASSERT_TRUE(a->Send("xy").ok());
  a->Close();
  std::string got;
  // Buffered bytes are still readable, then a clean end of stream.
  ASSERT_TRUE(b->ReceiveExact(2, &got).ok());
  Status end = b->ReceiveExact(1, &got);
  EXPECT_EQ(end.code(), StatusCode::kOutOfRange);
  // A close that cuts a message in half is data loss.
  auto [c, d] = MakePipePair();
  ASSERT_TRUE(c->Send("abc").ok());
  c->Close();
  Status torn = d->ReceiveExact(10, &got);
  EXPECT_EQ(torn.code(), StatusCode::kDataLoss);
}

TEST(PipeTransportTest, CloseUnblocksReader) {
  auto [a, b] = MakePipePair();
  std::thread closer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->Close();
  });
  std::string got;
  Status blocked = b->ReceiveExact(1, &got);
  EXPECT_FALSE(blocked.ok());
  closer.join();
}

TEST(PipeTransportTest, BoundedBufferAppliesBackpressure) {
  auto [a, b] = MakePipePair(/*capacity=*/8);
  std::string big(64, 'z');
  std::thread sender([&a, &big] { EXPECT_TRUE(a->Send(big).ok()); });
  std::string got;
  ASSERT_TRUE(b->ReceiveExact(big.size(), &got).ok());
  EXPECT_EQ(got, big);
  sender.join();
}

TEST(PipeTransportTest, ListenerHandsOutConnectedPairs) {
  PipeListener listener;
  StatusOr<std::unique_ptr<Connection>> client = listener.Connect();
  ASSERT_TRUE(client.ok());
  StatusOr<std::unique_ptr<Connection>> server = listener.Accept();
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*client)->Send("hi").ok());
  std::string got;
  ASSERT_TRUE((*server)->ReceiveExact(2, &got).ok());
  EXPECT_EQ(got, "hi");
  listener.Close();
  EXPECT_FALSE(listener.Accept().ok());
  EXPECT_FALSE(listener.Connect().ok());
}

// --- single-client service behavior -------------------------------------

struct TestService {
  explicit TestService(const std::string& name, PqShape shape,
                       ServerOptions options = ServerOptions()) {
    index = MustCreate(name, shape);
    server = std::make_unique<Server>(index.get(), options);
    auto listener = std::make_unique<PipeListener>();
    connect_point = listener.get();
    Status started = server->Start(std::move(listener));
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<Client> MustConnect() {
    StatusOr<std::unique_ptr<Connection>> conn = connect_point->Connect();
    EXPECT_TRUE(conn.ok());
    StatusOr<std::unique_ptr<Client>> client =
        Client::Connect(std::move(*conn));
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  StorePtr index;
  std::unique_ptr<Server> server;
  PipeListener* connect_point = nullptr;
};

// Counter value in a snapshot, or 0 when absent (registry cells are
// process-wide and accumulate across servers, so tests compare deltas).
int64_t CounterValue(const MetricsSnapshot& snap, std::string_view name) {
  const MetricSample* sample = snap.Find(name);
  return sample != nullptr ? sample->value : 0;
}

int64_t HistCount(const MetricsSnapshot& snap, std::string_view name) {
  const MetricSample* sample = snap.Find(name);
  return sample != nullptr ? sample->count : 0;
}

TEST(ServiceTest, ConnectLearnsShapeAndPings) {
  TestService service("svc_ping.db", PqShape{2, 3});
  std::unique_ptr<Client> client = service.MustConnect();
  EXPECT_EQ(client->shape(), (PqShape{2, 3}));
  EXPECT_TRUE(client->Ping().ok());
  StatusOr<ServiceStats> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tree_count, 0);
  service.server->Stop();
}

TEST(ServiceTest, LookupMatchesInMemoryLibrary) {
  const PqShape shape{2, 3};
  TestService service("svc_lookup.db", shape);
  std::unique_ptr<Client> client = service.MustConnect();

  Rng rng(21);
  auto dict = std::make_shared<LabelDict>();
  ForestIndex library(shape);
  std::vector<Tree> trees;
  for (TreeId id = 0; id < 10; ++id) {
    trees.push_back(GenerateXmarkLike(dict, &rng, 80));
    ASSERT_TRUE(client->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }

  for (double tau : {0.0, 0.3, 0.8, 1.0}) {
    for (TreeId id = 0; id < 3; ++id) {
      StatusOr<std::vector<LookupResult>> remote =
          client->Lookup(trees[static_cast<size_t>(id)], tau);
      ASSERT_TRUE(remote.ok());
      std::vector<LookupResult> local =
          library.Lookup(trees[static_cast<size_t>(id)], tau);
      ASSERT_EQ(remote->size(), local.size()) << "tau " << tau;
      for (size_t i = 0; i < local.size(); ++i) {
        EXPECT_EQ((*remote)[i].tree_id, local[i].tree_id);
        EXPECT_DOUBLE_EQ((*remote)[i].distance, local[i].distance);
      }
    }
  }

  // Lookups were served from the epoch-published engine snapshot: the
  // epoch advanced past the initial publish (once per commit batch) and
  // the candidate counters moved.
  StatusOr<ServiceStats> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->snapshot_epoch, 1);
  EXPECT_GT(stats->candidates_scored, 0);
  EXPECT_GE(stats->candidates_pruned, 0);
  EXPECT_GT(stats->snapshot_rebuild_us, 0);
  service.server->Stop();
}

TEST(ServiceTest, ParallelLookupScoringMatchesInMemoryLibrary) {
  // Same equivalence check, but the server scores each lookup across
  // snapshot shards on a dedicated pool (lookup_threads > 0).
  const PqShape shape{2, 3};
  ServerOptions options;
  options.lookup_threads = 3;
  TestService service("svc_lookup_par.db", shape, options);
  std::unique_ptr<Client> client = service.MustConnect();

  Rng rng(23);
  auto dict = std::make_shared<LabelDict>();
  ForestIndex library(shape);
  std::vector<Tree> trees;
  for (TreeId id = 0; id < 12; ++id) {
    trees.push_back(GenerateDblpLike(dict, &rng, 60));
    ASSERT_TRUE(client->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }

  for (double tau : {0.0, 0.4, 0.9, 1.0}) {
    for (TreeId id = 0; id < 4; ++id) {
      StatusOr<std::vector<LookupResult>> remote =
          client->Lookup(trees[static_cast<size_t>(id)], tau);
      ASSERT_TRUE(remote.ok());
      std::vector<LookupResult> local =
          library.Lookup(trees[static_cast<size_t>(id)], tau);
      ASSERT_EQ(remote->size(), local.size()) << "tau " << tau;
      for (size_t i = 0; i < local.size(); ++i) {
        EXPECT_EQ((*remote)[i].tree_id, local[i].tree_id);
        EXPECT_DOUBLE_EQ((*remote)[i].distance, local[i].distance);
      }
    }
  }
  StatusOr<ServiceStats> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->snapshot_epoch, 1);
  EXPECT_GT(stats->candidates_scored, 0);
  service.server->Stop();
}

TEST(ServiceTest, TopKRoundTripMatchesInMemoryLibrary) {
  const PqShape shape{2, 3};
  TestService service("svc_topk.db", shape);
  std::unique_ptr<Client> client = service.MustConnect();

  Rng rng(37);
  auto dict = std::make_shared<LabelDict>();
  ForestIndex library(shape);
  std::vector<Tree> trees;
  for (TreeId id = 0; id < 12; ++id) {
    trees.push_back(GenerateDblpLike(dict, &rng, 60));
    ASSERT_TRUE(client->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }

  const MetricsSnapshot before = Metrics::Default().Snapshot();
  for (int k : {1, 3, 7, 100}) {
    for (TreeId id = 0; id < 3; ++id) {
      StatusOr<std::vector<LookupResult>> remote =
          client->TopK(trees[static_cast<size_t>(id)], k);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      std::vector<LookupResult> local =
          library.TopK(trees[static_cast<size_t>(id)], k);
      ASSERT_EQ(remote->size(), local.size()) << "k " << k;
      for (size_t i = 0; i < local.size(); ++i) {
        EXPECT_EQ((*remote)[i].tree_id, local[i].tree_id);
        EXPECT_DOUBLE_EQ((*remote)[i].distance, local[i].distance);
      }
    }
  }
  // k = 0 is a valid request for an empty answer.
  StatusOr<std::vector<LookupResult>> none = client->TopK(trees[0], 0);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  // Out-of-range k never reaches the wire.
  StatusOr<std::vector<LookupResult>> negative = client->TopK(trees[0], -1);
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
  StatusOr<std::vector<LookupResult>> huge =
      client->TopK(trees[0], TopKRequest::kMaxK + 1);
  EXPECT_EQ(huge.status().code(), StatusCode::kInvalidArgument);

  // The per-opcode histogram ticked once per accepted kTopK request,
  // and the lookups counter includes them.
  StatusOr<MetricsSnapshot> after = client->StatsSnapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(
      HistCount(*after, "server.topk_us") - HistCount(before, "server.topk_us"),
      13);
  service.server->Stop();
}

TEST(ServiceTest, QueryCacheServesRepeatsAndSurvivesEdits) {
  const PqShape shape{2, 3};
  ServerOptions options;
  options.query_cache_mb = 8;
  TestService service("svc_qcache.db", shape, options);
  std::unique_ptr<Client> client = service.MustConnect();

  Rng rng(41);
  auto dict = std::make_shared<LabelDict>();
  ForestIndex library(shape);
  std::vector<Tree> trees;
  for (TreeId id = 0; id < 10; ++id) {
    trees.push_back(GenerateDblpLike(dict, &rng, 60));
    ASSERT_TRUE(client->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }

  auto expect_matches_library = [&](const Tree& query, double tau,
                                    const char* what) {
    StatusOr<std::vector<LookupResult>> remote = client->Lookup(query, tau);
    ASSERT_TRUE(remote.ok()) << what;
    std::vector<LookupResult> local = library.Lookup(query, tau);
    ASSERT_EQ(remote->size(), local.size()) << what;
    for (size_t i = 0; i < local.size(); ++i) {
      EXPECT_EQ((*remote)[i].tree_id, local[i].tree_id) << what;
      EXPECT_DOUBLE_EQ((*remote)[i].distance, local[i].distance) << what;
    }
  };

  // Cold then repeated: the repeats are served from the cache -- hit
  // counters move, answers stay identical to the in-memory library.
  const MetricsSnapshot before = Metrics::Default().Snapshot();
  expect_matches_library(trees[0], 0.8, "cold");
  StatusOr<MetricsSnapshot> cold = client->StatsSnapshot();
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(CounterValue(*cold, "query_cache.misses") -
                CounterValue(before, "query_cache.misses"),
            0);

  expect_matches_library(trees[0], 0.8, "warm 1");
  expect_matches_library(trees[0], 0.8, "warm 2");
  ASSERT_TRUE(client->TopK(trees[0], 5).ok());
  ASSERT_TRUE(client->TopK(trees[0], 5).ok());
  StatusOr<MetricsSnapshot> warm = client->StatsSnapshot();
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(CounterValue(*warm, "query_cache.hits") -
                CounterValue(*cold, "query_cache.hits"),
            0);
  EXPECT_GT(CounterValue(*warm, "query_cache.entries"), 0);
  EXPECT_GT(CounterValue(*warm, "query_cache.bytes"), 0);

  // An edit republishes the engine (incremental ApplyDelta) and the
  // cache reconciles: stale entries for recompiled shards are dropped,
  // and post-edit answers track the new index state exactly.
  EditLog log;
  GenerateEditScript(&trees[0], &rng, 12, EditScriptOptions{}, &log);
  ASSERT_TRUE(library.ApplyLog(0, trees[0], log).ok());
  ASSERT_TRUE(client->ApplyEdits(0, trees[0], log).ok());
  for (double tau : {0.0, 0.5, 0.8, 1.0}) {
    expect_matches_library(trees[0], tau, "post edit");
    expect_matches_library(trees[0], tau, "post edit warm");
  }
  StatusOr<MetricsSnapshot> final_snap = client->StatsSnapshot();
  ASSERT_TRUE(final_snap.ok());
  EXPECT_GE(CounterValue(*final_snap, "query_cache.stale") -
                CounterValue(before, "query_cache.stale"),
            0);
  service.server->Stop();
  service.index->CheckConsistency();
}

TEST(ServiceTest, QueryCacheOffServesIdenticalAnswers) {
  const PqShape shape{2, 2};
  ServerOptions options;
  options.query_cache_off = true;
  TestService service("svc_qcache_off.db", shape, options);
  std::unique_ptr<Client> client = service.MustConnect();

  Rng rng(43);
  ForestIndex library(shape);
  std::vector<Tree> trees;
  for (TreeId id = 0; id < 6; ++id) {
    trees.push_back(GenerateDblpLike(nullptr, &rng, 40));
    ASSERT_TRUE(client->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }
  for (int pass = 0; pass < 2; ++pass) {
    StatusOr<std::vector<LookupResult>> remote = client->Lookup(trees[1], 0.7);
    ASSERT_TRUE(remote.ok());
    std::vector<LookupResult> local = library.Lookup(trees[1], 0.7);
    ASSERT_EQ(remote->size(), local.size());
    for (size_t i = 0; i < local.size(); ++i) {
      EXPECT_EQ((*remote)[i].tree_id, local[i].tree_id);
      EXPECT_DOUBLE_EQ((*remote)[i].distance, local[i].distance);
    }
    StatusOr<std::vector<LookupResult>> top = client->TopK(trees[1], 4);
    ASSERT_TRUE(top.ok());
    std::vector<LookupResult> local_top = library.TopK(trees[1], 4);
    ASSERT_EQ(top->size(), local_top.size());
  }
  service.server->Stop();
}

TEST(ServiceTest, ApplyEditsMatchesInMemoryLibrary) {
  const PqShape shape{3, 3};
  TestService service("svc_edits.db", shape);
  std::unique_ptr<Client> client = service.MustConnect();

  Rng rng(22);
  Tree doc = GenerateDblpLike(nullptr, &rng, 60);
  ASSERT_TRUE(client->AddTree(1, doc).ok());
  ForestIndex library(shape);
  library.AddTree(1, doc);

  for (int round = 0; round < 5; ++round) {
    EditLog log;
    GenerateEditScript(&doc, &rng, 20, EditScriptOptions{}, &log);
    ASSERT_TRUE(client->ApplyEdits(1, doc, log).ok()) << "round " << round;
    ASSERT_TRUE(library.ApplyLog(1, doc, log).ok());
  }

  // The served index, the library, and a from-scratch rebuild agree.
  StatusOr<std::vector<LookupResult>> remote = client->Lookup(doc, 1.0);
  ASSERT_TRUE(remote.ok());
  ASSERT_EQ(remote->size(), 1u);
  EXPECT_DOUBLE_EQ((*remote)[0].distance,
                   library.Lookup(doc, 1.0)[0].distance);
  service.server->Stop();
  StatusOr<PqGramIndex> on_disk = service.index->MaterializeIndex(1);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(*on_disk, BuildIndex(doc, shape));
}

TEST(ServiceTest, InvalidEditsAreRejectedWithoutDisturbingTheIndex) {
  const PqShape shape{2, 2};
  TestService service("svc_invalid.db", shape);
  std::unique_ptr<Client> client = service.MustConnect();

  Rng rng(23);
  Tree tree = GenerateDblpLike(nullptr, &rng, 30);
  PqGramIndex bag = BuildIndex(tree, shape);
  ASSERT_TRUE(client->AddIndex(5, bag).ok());

  // Duplicate add.
  Status duplicate = client->AddIndex(5, bag);
  EXPECT_EQ(duplicate.code(), StatusCode::kFailedPrecondition);
  // Update of an unknown tree.
  Status unknown = client->ApplyDeltas(99, PqGramIndex(shape),
                                       PqGramIndex(shape));
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound);
  // A minus bag that is not a sub-bag of the stored bag: the class of
  // input that would abort the in-process index must come back as a
  // plain error over the wire.
  PqGramIndex bogus_minus(shape);
  bogus_minus.Add(0xdeadbeefULL, 1000000);
  Status bad_minus = client->ApplyDeltas(5, PqGramIndex(shape), bogus_minus);
  EXPECT_EQ(bad_minus.code(), StatusCode::kInvalidArgument);
  // Wrong-shape query never reaches the index's shape CHECK.
  PqGramIndex wrong_shape(PqShape{3, 3});
  EXPECT_FALSE(client->Lookup(wrong_shape, 0.5).ok());
  // Hostile tau values come back as InvalidArgument instead of hanging
  // or aborting a handler (the -inf case used to spin the count filter
  // forever).
  for (double tau : {-std::numeric_limits<double>::infinity(), -1e308,
                     -0.5, std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN()}) {
    StatusOr<std::vector<LookupResult>> bad = client->Lookup(bag, tau);
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument)
        << "tau " << tau;
  }

  // The stored bag is untouched by all of the above.
  StatusOr<std::vector<LookupResult>> hits = client->Lookup(bag, 0.0);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].tree_id, 5);
  StatusOr<ServiceStats> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tree_count, 1);
  service.server->Stop();
  service.index->CheckConsistency();
}

TEST(ServiceTest, WriteQueueAdmissionControlRejects) {
  ServerOptions options;
  options.max_write_queue = 0;  // every edit is over capacity
  TestService service("svc_admission.db", PqShape{2, 2}, options);
  std::unique_ptr<Client> client = service.MustConnect();
  PqGramIndex bag(PqShape{2, 2});
  bag.Add(1, 1);
  Status rejected = client->AddIndex(1, bag);
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  StatusOr<ServiceStats> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->rejected, 1);
  EXPECT_EQ(stats->tree_count, 0);
  service.server->Stop();
}

TEST(ServiceTest, ConnectionCapAdmissionControlRejects) {
  ServerOptions options;
  options.max_connections = 1;
  TestService service("svc_conncap.db", PqShape{2, 2}, options);
  std::unique_ptr<Client> holder = service.MustConnect();

  // The handler slot is occupied (holder's Stats handshake proves its
  // handler is live), so the next connection is turned away with an
  // UNAVAILABLE rejection frame on request id 0 before any request is
  // read -- observe it on a raw connection without sending a byte.
  StatusOr<std::unique_ptr<Connection>> conn =
      service.connect_point->Connect();
  ASSERT_TRUE(conn.ok());
  std::string bytes;
  ASSERT_TRUE((*conn)->ReceiveExact(kFrameHeaderSize, &bytes).ok());
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(bytes, &header).ok());
  EXPECT_TRUE(header.is_response());
  EXPECT_EQ(header.request_id, 0u);
  std::string payload;
  ASSERT_TRUE((*conn)->ReceiveExact(header.payload_size, &payload).ok());
  ByteReader reader(payload);
  Status transported;
  ASSERT_TRUE(DecodeStatus(&reader, &transported).ok());
  EXPECT_EQ(transported.code(), StatusCode::kUnavailable);
  EXPECT_GE(service.server->stats().rejected, 1);
  service.server->Stop();
}

TEST(ServiceTest, MalformedFramesGetErrorResponsesNeverAborts) {
  TestService service("svc_malformed.db", PqShape{2, 2});

  // A frame with a corrupt header: the server answers with an error frame
  // on request id 0 and drops the connection.
  {
    StatusOr<std::unique_ptr<Connection>> conn =
        service.connect_point->Connect();
    ASSERT_TRUE(conn.ok());
    std::string garbage(kFrameHeaderSize, '\xee');
    ASSERT_TRUE((*conn)->Send(garbage).ok());
    std::string bytes;
    ASSERT_TRUE((*conn)->ReceiveExact(kFrameHeaderSize, &bytes).ok());
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(bytes, &header).ok());
    EXPECT_TRUE(header.is_response());
    EXPECT_EQ(header.request_id, 0u);
    std::string payload;
    ASSERT_TRUE((*conn)->ReceiveExact(header.payload_size, &payload).ok());
    ByteReader reader(payload);
    Status transported;
    ASSERT_TRUE(DecodeStatus(&reader, &transported).ok());
    EXPECT_FALSE(transported.ok());
  }

  // A well-formed header whose payload is garbage: a per-request error
  // response, and the connection stays usable.
  {
    StatusOr<std::unique_ptr<Connection>> conn =
        service.connect_point->Connect();
    ASSERT_TRUE(conn.ok());
    FrameHeader header;
    header.type = MessageType::kLookup;
    header.request_id = 42;
    std::string junk = "not a lookup payload";
    header.payload_size = static_cast<uint32_t>(junk.size());
    ASSERT_TRUE((*conn)->Send(EncodeFrame(header, junk)).ok());
    std::string bytes;
    ASSERT_TRUE((*conn)->ReceiveExact(kFrameHeaderSize, &bytes).ok());
    FrameHeader response;
    ASSERT_TRUE(DecodeFrameHeader(bytes, &response).ok());
    EXPECT_EQ(response.request_id, 42u);
    std::string payload;
    ASSERT_TRUE((*conn)->ReceiveExact(response.payload_size, &payload).ok());
    ByteReader reader(payload);
    Status transported;
    ASSERT_TRUE(DecodeStatus(&reader, &transported).ok());
    EXPECT_FALSE(transported.ok());

    // Same connection, now a valid request.
    FrameHeader ping;
    ping.type = MessageType::kPing;
    ping.request_id = 43;
    ASSERT_TRUE((*conn)->Send(EncodeFrame(ping, std::string_view())).ok());
    ASSERT_TRUE((*conn)->ReceiveExact(kFrameHeaderSize, &bytes).ok());
    ASSERT_TRUE(DecodeFrameHeader(bytes, &response).ok());
    EXPECT_EQ(response.request_id, 43u);
    ASSERT_TRUE((*conn)->ReceiveExact(response.payload_size, &payload).ok());
  }

  StatusOr<ServiceStats> stats = [&] {
    std::unique_ptr<Client> client = service.MustConnect();
    return client->Stats();
  }();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->protocol_errors, 2);
  service.server->Stop();
  service.index->CheckConsistency();
}

TEST(ServiceTest, GroupCommitBatchesConcurrentEdits) {
  ServerOptions options;
  options.max_connections = 8;
  // Hold leadership long enough that concurrently submitted edits pile
  // into one batch even on a fast machine.
  options.commit_hold_us = 2000;
  const PqShape shape{2, 2};
  TestService service("svc_batch.db", shape, options);

  constexpr int kWriters = 6;
  constexpr int kEditsPerWriter = 20;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::unique_ptr<Client> client = service.MustConnect();
      PqGramIndex bag(shape);
      bag.Add(static_cast<PqGramFingerprint>(1000 + w), 2);
      if (!client->AddIndex(static_cast<TreeId>(w), bag).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kEditsPerWriter; ++i) {
        PqGramIndex plus(shape);
        plus.Add(static_cast<PqGramFingerprint>(w * 1000 + i), 1);
        if (!client->ApplyDeltas(static_cast<TreeId>(w), plus,
                                 PqGramIndex(shape), 1)
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);

  ServiceStats stats = service.server->stats();
  EXPECT_EQ(stats.edits_applied, kWriters * (kEditsPerWriter + 1));
  // The whole point of group commit: strictly fewer WAL commits than
  // edits, and at least one real batch.
  EXPECT_LT(stats.edit_commits, stats.edits_applied);
  EXPECT_GE(stats.max_batch, 2);
  service.server->Stop();
  service.index->CheckConsistency();
}

// --- multi-client stress -------------------------------------------------

// Runs `kClients` concurrent clients over `connect`, each owning a
// disjoint set of trees (so the final state is deterministic), mixing
// lookups with incremental edits. Verifies zero protocol errors, that
// every response matches the single-threaded library result, and that the
// persistent file reopens clean with exactly the expected bags.
void RunStressWorkload(TestService* service,
                       const std::string& reopen_name) {
  const PqShape shape = service->index->shape();
  constexpr int kClients = 5;
  constexpr int kTreesPerClient = 3;
  constexpr int kRounds = 8;

  // Each client applies a deterministic edit sequence; the reference
  // library applies the same sequences single-threaded afterwards.
  std::vector<std::vector<Tree>> final_trees(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::unique_ptr<Client> client = service->MustConnect();
      Rng rng(7000 + c);
      std::vector<Tree> trees;
      for (int t = 0; t < kTreesPerClient; ++t) {
        trees.push_back(GenerateDblpLike(nullptr, &rng, 40));
        TreeId id = static_cast<TreeId>(c * kTreesPerClient + t);
        if (!client->AddTree(id, trees.back()).ok()) failures.fetch_add(1);
      }
      for (int round = 0; round < kRounds; ++round) {
        for (int t = 0; t < kTreesPerClient; ++t) {
          TreeId id = static_cast<TreeId>(c * kTreesPerClient + t);
          EditLog log;
          GenerateEditScript(&trees[static_cast<size_t>(t)], &rng, 6,
                             EditScriptOptions{}, &log);
          if (!client->ApplyEdits(id, trees[static_cast<size_t>(t)], log)
                   .ok()) {
            failures.fetch_add(1);
          }
          // Interleave a lookup for own tree: it must always be found at
          // distance 0 regardless of other clients' concurrent edits.
          StatusOr<std::vector<LookupResult>> hits =
              client->Lookup(trees[static_cast<size_t>(t)], 0.0);
          if (!hits.ok()) {
            failures.fetch_add(1);
          } else {
            bool found_self = false;
            for (const LookupResult& hit : *hits) {
              if (hit.tree_id == id && hit.distance == 0.0) {
                found_self = true;
              }
            }
            if (!found_self) failures.fetch_add(1);
          }
        }
      }
      final_trees[static_cast<size_t>(c)] = std::move(trees);
      client->Close();
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  ServiceStats stats = service->server->stats();
  EXPECT_EQ(stats.protocol_errors, 0);
  EXPECT_EQ(stats.tree_count, kClients * kTreesPerClient);
  service->server->Stop();

  // The persistent index must now hold exactly what a single-threaded
  // application of every client's edit sequence produces.
  service->index->CheckConsistency();
  for (int c = 0; c < kClients; ++c) {
    for (int t = 0; t < kTreesPerClient; ++t) {
      TreeId id = static_cast<TreeId>(c * kTreesPerClient + t);
      StatusOr<PqGramIndex> stored = service->index->MaterializeIndex(id);
      ASSERT_TRUE(stored.ok());
      EXPECT_EQ(*stored,
                BuildIndex(final_trees[static_cast<size_t>(c)]
                                      [static_cast<size_t>(t)],
                           shape))
          << "tree " << id;
    }
  }

  // And it must reopen clean from disk.
  service->index.reset();
  StatusOr<StorePtr> reopened =
      ShardedStore::Open(TempPath(reopen_name));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  (*reopened)->CheckConsistency();
  EXPECT_EQ((*reopened)->size(), kClients * kTreesPerClient);
}

// --- observability (kStatsSnapshot + slow-op log) -----------------------

TEST(ServiceTest, StatsSnapshotRoundTripsOverPipe) {
  const PqShape shape{2, 3};
  TestService service("svc_snapshot.db", shape);
  std::unique_ptr<Client> client = service.MustConnect();

  const MetricsSnapshot before = Metrics::Default().Snapshot();
  ServiceStats stats_before = client->Stats().value();

  // A mixed workload: adds, incremental edits, lookups.
  Rng rng(31);
  Tree doc = GenerateDblpLike(nullptr, &rng, 50);
  ASSERT_TRUE(client->AddTree(1, doc).ok());
  for (int round = 0; round < 3; ++round) {
    EditLog log;
    GenerateEditScript(&doc, &rng, 10, EditScriptOptions{}, &log);
    ASSERT_TRUE(client->ApplyEdits(1, doc, log).ok());
    ASSERT_TRUE(client->Lookup(doc, 0.8).ok());
  }

  StatusOr<MetricsSnapshot> remote = client->StatsSnapshot();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ServiceStats stats_after = client->Stats().value();

  // The wire snapshot and ServiceStats mirror the same events: their
  // deltas over the workload must agree exactly.
  EXPECT_EQ(CounterValue(*remote, "server.lookups") -
                CounterValue(before, "server.lookups"),
            stats_after.lookups - stats_before.lookups);
  EXPECT_EQ(CounterValue(*remote, "server.edits_applied") -
                CounterValue(before, "server.edits_applied"),
            stats_after.edits_applied - stats_before.edits_applied);
  EXPECT_EQ(CounterValue(*remote, "server.edit_commits") -
                CounterValue(before, "server.edit_commits"),
            stats_after.edit_commits - stats_before.edit_commits);

  // Per-opcode latency histograms moved for every opcode the workload
  // exercised, and the store's ApplyBatch phase split came along.
  EXPECT_GT(HistCount(*remote, "server.lookup_us") -
                HistCount(before, "server.lookup_us"),
            0);
  EXPECT_GT(HistCount(*remote, "server.apply_edits_us") -
                HistCount(before, "server.apply_edits_us"),
            0);
  EXPECT_GT(HistCount(*remote, "server.add_tree_us") -
                HistCount(before, "server.add_tree_us"),
            0);
  EXPECT_GT(HistCount(*remote, "apply_batch.delta_us") -
                HistCount(before, "apply_batch.delta_us"),
            0);
  EXPECT_GT(HistCount(*remote, "apply_batch.storage_us") -
                HistCount(before, "apply_batch.storage_us"),
            0);
  // Pager durability counters are on the wire too.
  EXPECT_GT(CounterValue(*remote, "pager.fsyncs"), 0);

  service.server->Stop();
}

TEST(ServiceTest, StatsSnapshotRoundTripsOverTcp) {
  StatusOr<std::unique_ptr<TcpListener>> listener = TcpListener::Listen(0);
  if (!listener.ok()) {
    GTEST_SKIP() << "cannot bind loopback: " << listener.status().ToString();
  }
  int port = (*listener)->port();

  StorePtr index = MustCreate("svc_snapshot_tcp.db", PqShape{2, 3});
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start(std::move(*listener)).ok());

  StatusOr<std::unique_ptr<Connection>> conn =
      TcpConnect("127.0.0.1", static_cast<uint16_t>(port));
  ASSERT_TRUE(conn.ok());
  StatusOr<std::unique_ptr<Client>> client =
      Client::Connect(std::move(*conn));
  ASSERT_TRUE(client.ok());

  Rng rng(33);
  Tree doc = GenerateXmarkLike(nullptr, &rng, 40);
  ASSERT_TRUE((*client)->AddTree(7, doc).ok());
  ASSERT_TRUE((*client)->Lookup(doc, 0.5).ok());

  StatusOr<MetricsSnapshot> remote = (*client)->StatsSnapshot();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_GT(HistCount(*remote, "server.lookup_us"), 0);
  EXPECT_GT(HistCount(*remote, "server.stats_us"), 0);  // Connect()'s probe
  EXPECT_NE(remote->Find("server.snapshot_epoch"), nullptr);
  // The exposition of the transported snapshot is well-formed.
  EXPECT_NE(remote->ToJson().find("\"histograms\""), std::string::npos);
  (*client)->Close();
  server.Stop();
}

TEST(ServiceTest, StatsSnapshotRejectsNonEmptyPayload) {
  TestService service("svc_snapshot_reject.db", PqShape{2, 2});
  StatusOr<std::unique_ptr<Connection>> conn =
      service.connect_point->Connect();
  ASSERT_TRUE(conn.ok());

  FrameHeader header;
  header.type = MessageType::kStatsSnapshot;
  header.request_id = 9;
  std::string junk = "unexpected";
  header.payload_size = static_cast<uint32_t>(junk.size());
  ASSERT_TRUE((*conn)->Send(EncodeFrame(header, junk)).ok());

  std::string bytes;
  ASSERT_TRUE((*conn)->ReceiveExact(kFrameHeaderSize, &bytes).ok());
  FrameHeader response;
  ASSERT_TRUE(DecodeFrameHeader(bytes, &response).ok());
  EXPECT_EQ(response.request_id, 9u);
  std::string payload;
  ASSERT_TRUE((*conn)->ReceiveExact(response.payload_size, &payload).ok());
  ByteReader reader(payload);
  Status transported;
  ASSERT_TRUE(DecodeStatus(&reader, &transported).ok());
  EXPECT_FALSE(transported.ok());

  // The connection survives and a proper snapshot still works.
  (*conn)->Close();
  std::unique_ptr<Client> client = service.MustConnect();
  EXPECT_TRUE(client->StatsSnapshot().ok());
  StatusOr<ServiceStats> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->protocol_errors, 1);
  service.server->Stop();
}

TEST(ServiceTest, SlowOpLogCapturesRequestAndCommitPhases) {
  SlowOpLog::Default().Clear();
  ServerOptions options;
  options.slow_op_us = 1;  // log effectively everything
  TestService service("svc_slowop.db", PqShape{2, 3}, options);
  std::unique_ptr<Client> client = service.MustConnect();

  Rng rng(35);
  Tree doc = GenerateDblpLike(nullptr, &rng, 40);
  ASSERT_TRUE(client->AddTree(1, doc).ok());
  ASSERT_TRUE(client->Lookup(doc, 0.5).ok());
  service.server->Stop();

  bool saw_commit = false;
  bool saw_request = false;
  for (const SlowOpLog::Entry& entry : SlowOpLog::Default().Entries()) {
    if (entry.op == "server.commit_batch") {
      saw_commit = true;
      // The commit entry carries the ApplyBatch phase split.
      EXPECT_NE(entry.detail.find("delta_us="), std::string::npos);
      EXPECT_NE(entry.detail.find("storage_us="), std::string::npos);
      EXPECT_NE(entry.detail.find("publish_us="), std::string::npos);
      EXPECT_GE(entry.total_us, 1);
    }
    if (entry.op == "server.lookup" || entry.op == "server.add_tree") {
      saw_request = true;
      EXPECT_NE(entry.detail.find("payload_bytes="), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_commit) << "no server.commit_batch slow-op entry";
  EXPECT_TRUE(saw_request) << "no per-request slow-op entry";
  SlowOpLog::Default().Clear();
}

// A negative slow_op_us disables the server's slow-op logging entirely,
// even though the default log would accept the entries.
TEST(ServiceTest, SlowOpLogDisabledByNegativeThreshold) {
  SlowOpLog::Default().Clear();
  ServerOptions options;
  options.slow_op_us = -1;
  TestService service("svc_slowop_off.db", PqShape{2, 3}, options);
  std::unique_ptr<Client> client = service.MustConnect();
  Rng rng(36);
  Tree doc = GenerateDblpLike(nullptr, &rng, 30);
  ASSERT_TRUE(client->AddTree(1, doc).ok());
  ASSERT_TRUE(client->Lookup(doc, 0.5).ok());
  service.server->Stop();
  for (const SlowOpLog::Entry& entry : SlowOpLog::Default().Entries()) {
    EXPECT_EQ(entry.op.rfind("server.", 0), std::string::npos)
        << "slow-op logged while disabled: " << entry.op;
  }
  SlowOpLog::Default().Clear();
}

TEST(ServiceStressTest, ConcurrentClientsOverPipe) {
  ServerOptions options;
  options.max_connections = 6;
  TestService service("svc_stress_pipe.db", PqShape{2, 3}, options);
  RunStressWorkload(&service, "svc_stress_pipe.db");
}

// The same full-equivalence stress workload with the write pipeline on:
// up to three batches in flight (validation of batch N+1 overlapping the
// WAL commit of batch N), parallel delta staging, and incremental
// snapshot publication. Every response must still match the
// single-threaded library and the store must reopen clean -- the
// pipeline is pure mechanism, never visible in results. Runs under TSan
// in CI (lookups race pipelined commits).
TEST(ServiceStressTest, ConcurrentClientsWithPipelinedCommits) {
  ServerOptions options;
  options.max_connections = 8;
  options.commit_pipeline_depth = 3;
  options.staging_threads = 2;
  options.snapshot_full_rebuild_every = 8;
  options.commit_hold_us = 200;
  TestService service("svc_stress_pipeline.db", PqShape{2, 3}, options);
  RunStressWorkload(&service, "svc_stress_pipeline.db");
}

// Writers hammering ONE tree while commits pipeline: successor batches
// must validate against the predecessor's pending (overlay) bag, not the
// stale replica, or acknowledged edits would vanish. Every acked delta
// must be present in the final stored bag.
TEST(ServiceStressTest, PipelinedCommitsChainEditsOfOneTree) {
  ServerOptions options;
  options.max_connections = 8;
  options.commit_pipeline_depth = 4;
  options.staging_threads = 2;
  options.snapshot_full_rebuild_every = 4;
  const PqShape shape{2, 2};
  TestService service("svc_pipeline_chain.db", shape, options);

  constexpr int kWriters = 5;
  constexpr int kEditsPerWriter = 24;
  {
    std::unique_ptr<Client> seed = service.MustConnect();
    PqGramIndex bag(shape);
    bag.Add(static_cast<PqGramFingerprint>(1), 1);
    ASSERT_TRUE(seed->AddIndex(0, bag).ok());
  }
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::unique_ptr<Client> client = service.MustConnect();
      for (int i = 0; i < kEditsPerWriter; ++i) {
        PqGramIndex plus(shape);
        plus.Add(static_cast<PqGramFingerprint>(100 + w * 1000 + i), 1);
        if (!client->ApplyDeltas(0, plus, PqGramIndex(shape), 1).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
  service.server->Stop();

  service.index->CheckConsistency();
  StatusOr<PqGramIndex> stored = service.index->MaterializeIndex(0);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->Count(static_cast<PqGramFingerprint>(1)), 1);
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kEditsPerWriter; ++i) {
      EXPECT_EQ(
          stored->Count(static_cast<PqGramFingerprint>(100 + w * 1000 + i)),
          1)
          << "writer " << w << " edit " << i;
    }
  }
}

// Snapshot cadence: with --full-rebuild-every N, most publishes go down
// the incremental (ApplyDelta) path and every Nth is a full rebuild;
// both feed their own registry histogram.
TEST(ServiceMetricsTest, SnapshotPublishesSplitIncrementalVsFull) {
  MetricsSnapshot before = Metrics::Default().Snapshot();
  ServerOptions options;
  options.snapshot_full_rebuild_every = 4;
  const PqShape shape{2, 2};
  TestService service("svc_snapshot_cadence.db", shape, options);
  std::unique_ptr<Client> client = service.MustConnect();
  for (TreeId id = 0; id < 10; ++id) {
    PqGramIndex bag(shape);
    bag.Add(static_cast<PqGramFingerprint>(10 + id), 1);
    ASSERT_TRUE(client->AddIndex(id, bag).ok());
  }
  ServiceStats stats = service.server->stats();
  EXPECT_GE(stats.snapshot_epoch, 11);  // initial publish + one per commit
  service.server->Stop();

  MetricsSnapshot after = Metrics::Default().Snapshot();
  const int64_t incremental =
      HistCount(after, "server.snapshot_incremental_us") -
      HistCount(before, "server.snapshot_incremental_us");
  const int64_t full = HistCount(after, "server.snapshot_full_us") -
                       HistCount(before, "server.snapshot_full_us");
  EXPECT_GT(incremental, 0);
  EXPECT_GT(full, 0);
  EXPECT_GT(incremental, full);  // cadence 4: most publishes incremental
  const int64_t reused =
      CounterValue(after, "lookup_engine.shards_reused") -
      CounterValue(before, "lookup_engine.shards_reused");
  EXPECT_GT(reused, 0);  // copy-on-write actually shared shards
}

TEST(ServiceStressTest, ConcurrentClientsOverTcpLoopback) {
  StatusOr<std::unique_ptr<TcpListener>> listener = TcpListener::Listen(0);
  if (!listener.ok()) {
    GTEST_SKIP() << "cannot bind loopback: " << listener.status().ToString();
  }
  int port = (*listener)->port();

  ServerOptions options;
  options.max_connections = 6;
  StorePtr index = MustCreate("svc_stress_tcp.db", PqShape{2, 3});
  Server server(index.get(), options);
  ASSERT_TRUE(server.Start(std::move(*listener)).ok());

  constexpr int kClients = 4;
  constexpr int kTreesPerClient = 2;
  std::atomic<int> failures{0};
  std::vector<std::vector<Tree>> final_trees(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<std::unique_ptr<Connection>> conn =
          TcpConnect("127.0.0.1", static_cast<uint16_t>(port));
      if (!conn.ok()) { failures.fetch_add(1); return; }
      StatusOr<std::unique_ptr<Client>> client =
          Client::Connect(std::move(*conn));
      if (!client.ok()) { failures.fetch_add(1); return; }
      Rng rng(9000 + c);
      std::vector<Tree> trees;
      for (int t = 0; t < kTreesPerClient; ++t) {
        trees.push_back(GenerateXmarkLike(nullptr, &rng, 50));
        TreeId id = static_cast<TreeId>(c * kTreesPerClient + t);
        if (!(*client)->AddTree(id, trees.back()).ok()) {
          failures.fetch_add(1);
        }
      }
      for (int round = 0; round < 5; ++round) {
        for (int t = 0; t < kTreesPerClient; ++t) {
          TreeId id = static_cast<TreeId>(c * kTreesPerClient + t);
          EditLog log;
          GenerateEditScript(&trees[static_cast<size_t>(t)], &rng, 5,
                             EditScriptOptions{}, &log);
          if (!(*client)
                   ->ApplyEdits(id, trees[static_cast<size_t>(t)], log)
                   .ok()) {
            failures.fetch_add(1);
          }
          StatusOr<std::vector<LookupResult>> hits =
              (*client)->Lookup(trees[static_cast<size_t>(t)], 0.0);
          if (!hits.ok()) failures.fetch_add(1);
        }
      }
      final_trees[static_cast<size_t>(c)] = std::move(trees);
      (*client)->Close();
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().protocol_errors, 0);
  server.Stop();

  index->CheckConsistency();
  const PqShape shape{2, 3};
  for (int c = 0; c < kClients; ++c) {
    for (int t = 0; t < kTreesPerClient; ++t) {
      TreeId id = static_cast<TreeId>(c * kTreesPerClient + t);
      StatusOr<PqGramIndex> stored = index->MaterializeIndex(id);
      ASSERT_TRUE(stored.ok());
      EXPECT_EQ(*stored,
                BuildIndex(final_trees[static_cast<size_t>(c)]
                                      [static_cast<size_t>(t)],
                           shape))
          << "tree " << id;
    }
  }
}

// Regression test (runs under TSan in CI): stats() used to read
// replica_.shape() without holding index_mutex_ while storage turns
// mutate replica_ -- found by the thread-safety annotation retrofit
// (the shape is now cached in an immutable-after-Start member). This
// hammers stats() against a write-heavy workload so any reintroduced
// unlocked replica_ access that touches mutated memory (verified for
// an unlocked replica_.size() read) shows up as a TSan report.
TEST(ServiceStressTest, StatsRaceWritersRegression) {
  ServerOptions options;
  options.max_connections = 4;
  options.commit_pipeline_depth = 2;
  options.staging_threads = 2;
  TestService service("svc_stats_race.db", PqShape{2, 3}, options);

  std::atomic<bool> done{false};
  std::thread stats_reader([&] {
    while (!done.load()) {
      ServiceStats stats = service.server->stats();
      EXPECT_EQ(stats.p, 2);
      EXPECT_EQ(stats.q, 3);
      EXPECT_GE(stats.tree_count, 0);
    }
  });

  constexpr int kWriters = 3;
  constexpr int kTreesPerWriter = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::unique_ptr<Client> client = service.MustConnect();
      Rng rng(0xace0 + static_cast<uint64_t>(w));
      for (int t = 0; t < kTreesPerWriter; ++t) {
        TreeId id = static_cast<TreeId>(w * kTreesPerWriter + t);
        RandomTreeOptions tree_options;
        tree_options.num_nodes = 24;
        Tree tree = GenerateRandomTree(nullptr, &rng, tree_options);
        if (!client->AddTree(id, tree).ok()) failures.fetch_add(1);
        EditLog log;
        GenerateEditScript(&tree, &rng, 4, EditScriptOptions{}, &log);
        if (!client->ApplyEdits(id, tree, log).ok()) failures.fetch_add(1);
      }
      client->Close();
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true);
  stats_reader.join();

  ASSERT_EQ(failures.load(), 0);
  ServiceStats stats = service.server->stats();
  EXPECT_EQ(stats.tree_count, kWriters * kTreesPerWriter);
  service.server->Stop();
}

// --- replication wire payloads ------------------------------------------

TEST(WireReplicationTest, SubscribeRequestRoundTrip) {
  SubscribeRequest request;
  request.from_ticket = 0xdeadbeef12345678ULL;
  request.force_snapshot = true;
  ByteWriter writer;
  request.Encode(&writer);
  const std::string bytes = writer.Release();
  StatusOr<SubscribeRequest> decoded = SubscribeRequest::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->from_ticket, request.from_ticket);
  EXPECT_EQ(decoded->force_snapshot, true);

  // Hostile inputs: truncated, trailing bytes, bad flag byte.
  EXPECT_FALSE(SubscribeRequest::Decode(bytes.substr(0, 3)).ok());
  EXPECT_FALSE(SubscribeRequest::Decode(bytes + "x").ok());
  std::string bad_flag = bytes;
  bad_flag.back() = 2;
  EXPECT_FALSE(SubscribeRequest::Decode(bad_flag).ok());
}

TEST(WireReplicationTest, SubscribeAckRoundTrip) {
  SubscribeAck ack;
  ack.mode = SubscribeAck::Mode::kSnapshot;
  ack.ticket = 42;
  ack.p = 2;
  ack.q = 3;
  ByteWriter writer;
  ack.Encode(&writer);
  const std::string bytes = writer.Release();
  ByteReader reader(bytes);
  StatusOr<SubscribeAck> decoded = SubscribeAck::Decode(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->mode, SubscribeAck::Mode::kSnapshot);
  EXPECT_EQ(decoded->ticket, 42u);
  EXPECT_EQ(decoded->p, 2);
  EXPECT_EQ(decoded->q, 3);

  std::string bad_mode = bytes;
  bad_mode.front() = 7;
  ByteReader bad_reader(bad_mode);
  EXPECT_FALSE(SubscribeAck::Decode(&bad_reader).ok());
}

TEST(WireReplicationTest, DeltaFrameRoundTrip) {
  const PqShape shape{2, 3};
  Rng rng(77);
  auto dict = std::make_shared<LabelDict>();
  DeltaFrame frame;
  frame.ticket = 9;
  frame.publish_us = 123456789;
  frame.last_chunk = true;
  {
    DeltaEntry add;
    add.tree_id = 3;
    add.is_add = true;
    add.plus = BuildIndex(GenerateDblpLike(dict, &rng, 40), shape);
    // minus stays default: it is not serialized for is_add entries.
    frame.entries.push_back(std::move(add));
    DeltaEntry update;
    update.tree_id = 4;
    update.is_add = false;
    update.plus = BuildIndex(GenerateDblpLike(dict, &rng, 20), shape);
    update.minus = BuildIndex(GenerateDblpLike(dict, &rng, 10), shape);
    frame.entries.push_back(std::move(update));
  }
  ByteWriter writer;
  frame.Encode(&writer);
  const std::string bytes = writer.Release();
  StatusOr<DeltaFrame> decoded = DeltaFrame::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->ticket, frame.ticket);
  EXPECT_EQ(decoded->publish_us, frame.publish_us);
  EXPECT_EQ(decoded->last_chunk, frame.last_chunk);
  ASSERT_EQ(decoded->entries.size(), frame.entries.size());
  EXPECT_TRUE(decoded->entries[0] == frame.entries[0]);
  EXPECT_TRUE(decoded->entries[1] == frame.entries[1]);

  // Hostile inputs survive as status errors, never UB.
  EXPECT_FALSE(DeltaFrame::Decode(bytes.substr(0, bytes.size() / 2)).ok());
  EXPECT_FALSE(DeltaFrame::Decode(bytes + "zz").ok());
}

TEST(WireReplicationTest, ChunkedEncodeReassembles) {
  const PqShape shape{2, 3};
  Rng rng(78);
  auto dict = std::make_shared<LabelDict>();
  // Entries bigger than the chunk budget force several chunks.
  std::vector<PqGramIndex> bags;
  for (int i = 0; i < 6; ++i) {
    bags.push_back(BuildIndex(GenerateDblpLike(dict, &rng, 200), shape));
  }
  std::vector<DeltaEntryView> views;
  for (int i = 0; i < 6; ++i) {
    DeltaEntryView view;
    view.tree_id = i;
    view.is_add = true;
    view.plus = &bags[static_cast<size_t>(i)];
    views.push_back(view);
  }
  const std::vector<std::string> chunks =
      EncodeDeltaFrameChunks(5, 99, views, /*max_payload=*/2048);
  ASSERT_GT(chunks.size(), 1u);
  std::vector<DeltaEntry> assembled;
  for (size_t i = 0; i < chunks.size(); ++i) {
    ASSERT_LE(chunks[i].size(), kMaxFramePayload);
    StatusOr<DeltaFrame> chunk = DeltaFrame::Decode(chunks[i]);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    EXPECT_EQ(chunk->ticket, 5u);
    EXPECT_EQ(chunk->publish_us, 99);
    EXPECT_EQ(chunk->last_chunk, i + 1 == chunks.size());
    for (DeltaEntry& entry : chunk->entries) {
      assembled.push_back(std::move(entry));
    }
  }
  ASSERT_EQ(assembled.size(), views.size());
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(assembled[i].tree_id, views[i].tree_id);
    EXPECT_TRUE(assembled[i].is_add);
    EXPECT_TRUE(assembled[i].plus == *views[i].plus);
  }

  // An empty entry list still yields exactly one (heartbeat) chunk.
  const std::vector<std::string> heartbeat = EncodeDeltaFrameChunks(7, 1, {});
  ASSERT_EQ(heartbeat.size(), 1u);
  StatusOr<DeltaFrame> hb = DeltaFrame::Decode(heartbeat[0]);
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(hb->ticket, 7u);
  EXPECT_TRUE(hb->last_chunk);
  EXPECT_TRUE(hb->entries.empty());
}

// --- server lifecycle regressions ---------------------------------------

TEST(ServiceTest, DoubleStartReturnsFailedPrecondition) {
  // A second Start used to CHECK-abort the process; it must report the
  // caller bug as a status instead.
  StorePtr index = MustCreate("svc_double_start.db", PqShape{2, 3});
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start(std::make_unique<PipeListener>()).ok());
  Status again = server.Start(std::make_unique<PipeListener>());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  server.Stop();
}

TEST(ServiceTest, ReadOnlyServerRejectsEdits) {
  ServerOptions options;
  options.read_only = true;
  TestService service("svc_read_only.db", PqShape{2, 3}, options);
  std::unique_ptr<Client> client = service.MustConnect();
  Rng rng(31);
  auto dict = std::make_shared<LabelDict>();
  Tree tree = GenerateDblpLike(dict, &rng, 30);
  Status add = client->AddTree(1, tree);
  ASSERT_FALSE(add.ok());
  EXPECT_EQ(add.code(), StatusCode::kFailedPrecondition);
  // Reads still work.
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Lookup(tree, 0.5).ok());
  service.server->Stop();
}

}  // namespace
}  // namespace pqidx
