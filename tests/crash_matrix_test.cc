// Crash and fault-injection matrix for the durable index
// (storage/persistent_forest_index.h over storage/pager.h):
//
//   * every Pager::CrashPoint x many randomized ApplyBatch workloads,
//     several commits deep, asserting that reopening recovers exactly
//     the last durable state (full ForestIndex equality against an
//     in-memory mirror) and that the WAL replay/discard accounting is
//     reported correctly;
//   * an exhaustive InjectWriteFailureAfter sweep over a fixed batch:
//     every raw-write offset either commits the batch fully or poisons
//     the pager and recovers to a consistent pre- or post-batch state on
//     reopen -- never a torn mix.
//
// Both crash points fire after the WAL is sealed, so the crashed batch
// is always durable: recovery replays it and the store must equal the
// post-batch mirror.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "service/client.h"
#include "service/server.h"
#include "service/transport.h"
#include "storage/pager.h"
#include "storage/persistent_forest_index.h"
#include "storage/sharded_store.h"
#include "test_util.h"

namespace pqidx {
namespace {

using StorePtr = std::unique_ptr<PersistentForestIndex>;

// One exclusive scratch dir per test process (see test_util.h): keeps
// parallel `ctest -j` shards and reruns from colliding on store names.
std::string TempPath(const std::string& name) {
  static pqidx::testing::ScopedTempDir dir;
  return dir.File(name);
}

void RemoveStoreFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// A random bag of `tuples` distinct fingerprints with counts in [1, 3].
PqGramIndex RandomBag(Rng* rng, const PqShape& shape, int tuples) {
  PqGramIndex bag(shape);
  for (int i = 0; i < tuples; ++i) {
    bag.Add(static_cast<PqGramFingerprint>(rng->Next()),
            rng->Uniform(1, 3));
  }
  return bag;
}

// A random sub-bag of `bag`: each stored occurrence is retracted with
// probability ~1/3 (possibly empty).
PqGramIndex RandomSubBag(Rng* rng, const PqGramIndex& bag) {
  PqGramIndex minus(bag.shape());
  for (const auto& [fp, count] : bag.counts()) {
    int64_t take = static_cast<int64_t>(rng->NextBounded(
        static_cast<uint64_t>(count) + 1));
    if (take > 0 && rng->Bernoulli(0.5)) minus.Add(fp, take);
  }
  return minus;
}

// Owns the bags a batch of BatchEdits points into, plus the expected
// post-batch state.
struct PlannedBatch {
  std::vector<std::unique_ptr<PqGramIndex>> bags;
  std::vector<PersistentForestIndex::BatchEdit> edits;
};

// Plans a randomized insert/update mix against `mirror` (which tracks
// the expected durable state) and applies it to the mirror eagerly; the
// caller decides whether the store commit survives.
PlannedBatch PlanBatch(Rng* rng, ForestIndex* mirror, TreeId* next_id) {
  PlannedBatch batch;
  const int kEdits = static_cast<int>(rng->Uniform(1, 5));
  std::vector<TreeId> present = mirror->TreeIds();
  for (int e = 0; e < kEdits; ++e) {
    const bool add = present.empty() || rng->Bernoulli(0.4);
    PersistentForestIndex::BatchEdit edit;
    if (add) {
      edit.id = (*next_id)++;
      auto bag = std::make_unique<PqGramIndex>(
          RandomBag(rng, mirror->shape(), static_cast<int>(
                        rng->Uniform(3, 24))));
      mirror->AddIndex(edit.id, *bag);
      present.push_back(edit.id);
      edit.add = bag.get();
      batch.bags.push_back(std::move(bag));
    } else {
      edit.id = present[rng->NextBounded(present.size())];
      const PqGramIndex* current = mirror->Find(edit.id);
      auto minus = std::make_unique<PqGramIndex>(RandomSubBag(rng, *current));
      auto plus = std::make_unique<PqGramIndex>(
          RandomBag(rng, mirror->shape(), static_cast<int>(
                        rng->Uniform(0, 8))));
      PqGramIndex updated = *current;
      for (const auto& [fp, count] : minus->counts()) {
        updated.Remove(fp, count);
      }
      for (const auto& [fp, count] : plus->counts()) updated.Add(fp, count);
      mirror->AddIndex(edit.id, std::move(updated));  // replaces
      edit.plus = plus.get();
      edit.minus = minus.get();
      batch.bags.push_back(std::move(plus));
      batch.bags.push_back(std::move(minus));
    }
    batch.edits.push_back(edit);
  }
  return batch;
}

void ExpectStoreEquals(PersistentForestIndex* store,
                       const ForestIndex& mirror, const std::string& label) {
  store->CheckConsistency();
  StatusOr<ForestIndex> materialized = store->MaterializeForest();
  ASSERT_TRUE(materialized.ok()) << label << ": "
                                 << materialized.status().ToString();
  EXPECT_TRUE(*materialized == mirror) << label
                                       << ": recovered state diverges";
}

// One randomized workload: build a store several commits deep (mixed
// ApplyBatch / BulkAdd / RemoveTree), crash the final ApplyBatch at
// `point`, reopen, and require exactly the post-batch state. With
// `pool`, every BulkAdd/ApplyBatch stages its deltas in parallel --
// the net state written (and recovered) must be identical either way.
void RunCrashWorkload(Pager::CrashPoint point, int workload,
                      ThreadPool* pool) {
  const PqShape shape{2, 3};
  const std::string name =
      "crash_matrix_" +
      std::to_string(point == Pager::CrashPoint::kAfterWalSeal ? 0 : 1) +
      "_" + std::to_string(workload) + ".db";
  const std::string path = TempPath(name);
  RemoveStoreFiles(path);

  Rng rng(0xC0FFEE00 + static_cast<uint64_t>(workload) * 977 +
          (point == Pager::CrashPoint::kDuringInPlace ? 1 : 0));
  ForestIndex mirror(shape);
  TreeId next_id = 0;
  {
    StatusOr<StorePtr> created = PersistentForestIndex::Create(path, shape);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    StorePtr store = std::move(created).value();

    // Seed commit: a BulkAdd transaction so recovery must cross several
    // earlier commits, not just one.
    {
      std::vector<std::unique_ptr<PqGramIndex>> bags;
      std::vector<std::pair<TreeId, const PqGramIndex*>> refs;
      const int seed_trees = static_cast<int>(rng.Uniform(1, 4));
      for (int i = 0; i < seed_trees; ++i) {
        TreeId id = next_id++;
        bags.push_back(std::make_unique<PqGramIndex>(
            RandomBag(&rng, shape, static_cast<int>(rng.Uniform(4, 20)))));
        mirror.AddIndex(id, *bags.back());
        refs.emplace_back(id, bags.back().get());
      }
      ASSERT_TRUE(store->BulkAdd(refs, pool).ok());
    }

    // 1-3 committed randomized batches, with an occasional RemoveTree
    // (its own commit) between them.
    const int committed_batches = static_cast<int>(rng.Uniform(1, 3));
    for (int b = 0; b < committed_batches; ++b) {
      PlannedBatch batch = PlanBatch(&rng, &mirror, &next_id);
      std::vector<Status> results;
      ASSERT_TRUE(store->ApplyBatch(batch.edits, &results, nullptr,
                                    pool).ok());
      for (const Status& s : results) ASSERT_TRUE(s.ok()) << s.ToString();
      if (rng.Bernoulli(0.3)) {
        std::vector<TreeId> present = mirror.TreeIds();
        TreeId victim = present[rng.NextBounded(present.size())];
        if (mirror.size() > 1) {
          ASSERT_TRUE(store->RemoveTree(victim).ok());
          mirror.RemoveTree(victim);
        }
      }
    }

    // The crashed batch: armed commit dies at `point`, after the WAL
    // seal, so the batch IS durable.
    PlannedBatch batch = PlanBatch(&rng, &mirror, &next_id);
    std::vector<Status> results;
    ASSERT_TRUE(store->CrashNextCommit(point).ok());
    ASSERT_TRUE(store->ApplyBatch(batch.edits, &results, nullptr,
                                  pool).ok());
    // The store object is dead now (the pager dropped its file handle);
    // it is discarded without further use, exactly like a real crash.
  }

  StatusOr<StorePtr> reopened = PersistentForestIndex::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Recovery must have replayed exactly the one sealed WAL.
  EXPECT_EQ((*reopened)->pager().wal_replays(), 1) << "workload " << workload;
  EXPECT_EQ((*reopened)->pager().wal_discards(), 0);
  ExpectStoreEquals(reopened->get(), mirror,
                    "workload " + std::to_string(workload));
  RemoveStoreFiles(path);
}

TEST(CrashMatrixTest, AfterWalSealRecoversDurably) {
  // Even workloads stage serially, odd ones through a pool: the durable
  // bytes must not depend on how the deltas were staged.
  ThreadPool pool(3);
  for (int workload = 0; workload < 50; ++workload) {
    RunCrashWorkload(Pager::CrashPoint::kAfterWalSeal, workload,
                     workload % 2 == 1 ? &pool : nullptr);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashMatrixTest, DuringInPlaceRecoversDurably) {
  ThreadPool pool(3);
  for (int workload = 0; workload < 50; ++workload) {
    RunCrashWorkload(Pager::CrashPoint::kDuringInPlace, workload,
                     workload % 2 == 1 ? &pool : nullptr);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// A crash with no armed commit is just a clean close; reopening must
// not report any WAL activity.
TEST(CrashMatrixTest, CleanCloseReportsNoWalActivity) {
  const PqShape shape{2, 2};
  const std::string path = TempPath("crash_matrix_clean.db");
  RemoveStoreFiles(path);
  Rng rng(42);
  {
    StatusOr<StorePtr> store = PersistentForestIndex::Create(path, shape);
    ASSERT_TRUE(store.ok());
    PqGramIndex bag = RandomBag(&rng, shape, 10);
    ASSERT_TRUE((*store)->AddIndex(1, bag).ok());
  }
  StatusOr<StorePtr> reopened = PersistentForestIndex::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->pager().wal_replays(), 0);
  EXPECT_EQ((*reopened)->pager().wal_discards(), 0);
  RemoveStoreFiles(path);
}

// ---------------------------------------------------------------------------
// InjectWriteFailureAfter sweep.

// Deterministically rebuilds the sweep's base store and returns it; the
// mirrors of the pre- and post-batch states are rebuilt alongside.
struct SweepFixture {
  StorePtr store;
  ForestIndex before;
  ForestIndex after;
  PlannedBatch batch;
};

void BuildSweepFixture(const std::string& path, SweepFixture* fx) {
  const PqShape shape{2, 3};
  RemoveStoreFiles(path);
  Rng rng(0xFA11);
  fx->before = ForestIndex(shape);
  TreeId next_id = 0;
  StatusOr<StorePtr> created = PersistentForestIndex::Create(path, shape);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  fx->store = std::move(created).value();
  for (int i = 0; i < 4; ++i) {
    TreeId id = next_id++;
    PqGramIndex bag = RandomBag(&rng, shape, 20);
    fx->before.AddIndex(id, bag);
    ASSERT_TRUE(fx->store->AddIndex(id, bag).ok());
  }
  // The fixed batch under test: two updates and two adds, built from the
  // same seed every rebuild so every offset sees identical writes.
  fx->after = fx->before;
  fx->batch = PlanBatch(&rng, &fx->after, &next_id);
}

TEST(CrashMatrixTest, WriteFailureSweepNeverTearsABatch) {
  const std::string path = TempPath("crash_matrix_sweep.db");
  // Far above any plausible write count for this batch; the sweep must
  // terminate by committing cleanly well before this cap.
  const int kMaxOffsets = 2000;
  int committed_at = -1;
  for (int after = 0; after < kMaxOffsets; ++after) {
    SweepFixture fx;
    BuildSweepFixture(path, &fx);
    if (::testing::Test::HasFatalFailure()) return;

    fx.store->mutable_pager()->InjectWriteFailureAfter(after);
    std::vector<Status> results;
    Status status = fx.store->ApplyBatch(fx.batch.edits, &results);

    if (status.ok()) {
      // The injection budget covered the whole commit: the batch is
      // fully durable, in memory and across a reopen.
      for (const Status& s : results) EXPECT_TRUE(s.ok()) << s.ToString();
      ExpectStoreEquals(fx.store.get(), fx.after,
                        "committed at offset " + std::to_string(after));
      fx.store.reset();
      StatusOr<StorePtr> reopened = PersistentForestIndex::Open(path);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      EXPECT_EQ((*reopened)->pager().wal_replays(), 0);
      EXPECT_EQ((*reopened)->pager().wal_discards(), 0);
      ExpectStoreEquals(reopened->get(), fx.after, "reopen after commit");
      committed_at = after;
      break;
    }

    // Failure path: every staged edit reports the commit failure, the
    // pager is poisoned, and every subsequent operation refuses to run.
    EXPECT_TRUE(fx.store->pager().poisoned()) << "offset " << after;
    for (const Status& s : results) {
      EXPECT_FALSE(s.ok()) << "offset " << after;
    }
    StatusOr<ForestIndex> blocked = fx.store->MaterializeForest();
    ASSERT_FALSE(blocked.ok());
    EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);
    PqGramIndex probe(PqShape{2, 3});
    probe.Add(1, 1);  // non-empty, so the lookup must probe pages
    EXPECT_FALSE(fx.store->Lookup(probe, 1.0).ok());

    // Reopen: recovery lands on exactly the pre- or post-batch state --
    // post iff the WAL reached its seal before the injected failure --
    // and accounts for the leftover WAL either way.
    fx.store.reset();
    StatusOr<StorePtr> reopened = PersistentForestIndex::Open(path);
    ASSERT_TRUE(reopened.ok())
        << "offset " << after << ": " << reopened.status().ToString();
    const int64_t replays = (*reopened)->pager().wal_replays();
    const int64_t discards = (*reopened)->pager().wal_discards();
    EXPECT_EQ(replays + discards, 1)
        << "offset " << after << ": the failed commit always leaves a WAL";
    (*reopened)->CheckConsistency();
    StatusOr<ForestIndex> recovered = (*reopened)->MaterializeForest();
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    const bool is_before = *recovered == fx.before;
    const bool is_after = *recovered == fx.after;
    EXPECT_TRUE(is_before || is_after)
        << "offset " << after << " recovered to a torn state";
    // A replayed (sealed) WAL must carry the batch; a discarded one must
    // leave the pre-batch state.
    if (replays == 1) {
      EXPECT_TRUE(is_after) << "offset " << after;
    } else {
      EXPECT_TRUE(is_before) << "offset " << after;
    }
  }
  // The sweep covered every failing offset and ended with a clean
  // commit, so each raw write of the transaction was failed exactly once.
  ASSERT_GE(committed_at, 1) << "sweep never reached a successful commit";
  RemoveStoreFiles(path);
}

// ---------------------------------------------------------------------------
// Pipelined server commits x pager crash.

// A pager crash in the middle of a PIPELINED commit stream (depth 3,
// parallel staging, incremental snapshots). Both crash points fire after
// the WAL seal, so the crashed batch is durable and its writers are
// acked; every batch behind it in the pipeline hits the poisoned pager,
// fails, and must leave nothing durable. Reopening recovers exactly the
// acked edits -- the atomic before/after-batch guarantee survives
// overlapped commits.
TEST(CrashMatrixTest, PipelinedServerCrashKeepsExactlyAckedEdits) {
  for (Pager::CrashPoint point : {Pager::CrashPoint::kAfterWalSeal,
                                  Pager::CrashPoint::kDuringInPlace}) {
    const bool seal = point == Pager::CrashPoint::kAfterWalSeal;
    const PqShape shape{2, 2};
    const std::string path = TempPath(
        std::string("crash_matrix_pipeline_") + (seal ? "seal" : "inplace") +
        ".db");
    RemoveStoreFiles(path);
    StatusOr<std::unique_ptr<ShardedStore>> created =
        ShardedStore::Create(path, shape);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    std::unique_ptr<ShardedStore> store = std::move(created).value();

    ServerOptions options;
    options.max_connections = 8;
    options.commit_pipeline_depth = 3;
    options.staging_threads = 2;
    options.snapshot_full_rebuild_every = 4;
    options.commit_hold_us = 200;
    Server server(store.get(), options);
    auto listener = std::make_unique<PipeListener>();
    PipeListener* connect_point = listener.get();
    ASSERT_TRUE(server.Start(std::move(listener)).ok());

    auto connect = [&] {
      StatusOr<std::unique_ptr<Connection>> conn = connect_point->Connect();
      EXPECT_TRUE(conn.ok());
      StatusOr<std::unique_ptr<Client>> client =
          Client::Connect(std::move(*conn));
      EXPECT_TRUE(client.ok()) << client.status().ToString();
      return std::move(client).value();
    };

    constexpr int kWriters = 4;
    constexpr int kEditsPerWriter = 12;
    {
      // Seed one tree per writer; these commits land before the crash
      // is armed.
      std::unique_ptr<Client> seeder = connect();
      for (int w = 0; w < kWriters; ++w) {
        PqGramIndex bag(shape);
        bag.Add(static_cast<PqGramFingerprint>(w + 1), 1);
        ASSERT_TRUE(seeder->AddIndex(static_cast<TreeId>(w), bag).ok());
      }
    }
    // A single-shard store delegates commits to its one shard, so the
    // shard-level crash hook covers the whole service commit.
    ASSERT_TRUE(store->shard(0)->CrashNextCommit(point).ok());

    std::mutex acked_mutex;
    std::vector<std::vector<PqGramFingerprint>> acked(kWriters);
    int total_acked = 0;
    int total_failed = 0;
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        std::unique_ptr<Client> client = connect();
        for (int i = 0; i < kEditsPerWriter; ++i) {
          PqGramIndex plus(shape);
          const PqGramFingerprint fp =
              static_cast<PqGramFingerprint>(1000 + w * 100 + i);
          plus.Add(fp, 1);
          Status s = client->ApplyDeltas(static_cast<TreeId>(w), plus,
                                         PqGramIndex(shape), 1);
          std::lock_guard<std::mutex> lock(acked_mutex);
          if (s.ok()) {
            acked[static_cast<size_t>(w)].push_back(fp);
            ++total_acked;
          } else {
            ++total_failed;
          }
        }
      });
    }
    for (std::thread& t : writers) t.join();
    server.Stop();

    // Exactly one commit crashed (acked, durable); everything after it
    // failed against the poisoned pager.
    EXPECT_GE(total_acked, 1);
    EXPECT_GT(total_failed, 0);
    EXPECT_EQ(total_acked + total_failed, kWriters * kEditsPerWriter);

    store.reset();  // discard the poisoned handle, like a real crash
    StatusOr<StorePtr> reopened = PersistentForestIndex::Open(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ((*reopened)->pager().wal_replays(), 1);
    (*reopened)->CheckConsistency();
    for (int w = 0; w < kWriters; ++w) {
      PqGramIndex expected(shape);
      expected.Add(static_cast<PqGramFingerprint>(w + 1), 1);
      for (PqGramFingerprint fp : acked[static_cast<size_t>(w)]) {
        expected.Add(fp, 1);
      }
      StatusOr<PqGramIndex> stored =
          (*reopened)->MaterializeIndex(static_cast<TreeId>(w));
      ASSERT_TRUE(stored.ok()) << stored.status().ToString();
      EXPECT_EQ(*stored, expected)
          << "writer " << w << " (" << (seal ? "seal" : "inplace") << ")";
    }
    RemoveStoreFiles(path);
  }
}

// ---------------------------------------------------------------------------
// Sharded group commit x inter-shard crash points.

// Removes a sharded store directory (ScopedTempDir only reaps direct
// file entries, not nested directories).
void RemoveShardedStoreDir(const std::string& path) {
  std::remove((path + "/MANIFEST").c_str());
  for (int k = 0; k < 16; ++k) {
    char name[16];
    std::snprintf(name, sizeof(name), "shard-%04d", k);
    const std::string shard = path + "/" + name;
    std::remove(shard.c_str());
    std::remove((shard + ".wal").c_str());
  }
  ::rmdir(path.c_str());
}

// Plans a batch that touches EVERY shard of a `shards`-way store: one
// new tree per shard (ids chosen so id % shards covers each shard) and,
// when the shard already holds a tree, one update alongside it. The
// mirror is advanced eagerly, like PlanBatch.
PlannedBatch PlanShardSpanningBatch(Rng* rng, ForestIndex* mirror,
                                    TreeId* next_id, int shards) {
  PlannedBatch batch;
  const std::vector<TreeId> present = mirror->TreeIds();
  for (int k = 0; k < shards; ++k) {
    while (static_cast<int>(*next_id %
                            static_cast<uint32_t>(shards)) != k) {
      ++*next_id;
    }
    PersistentForestIndex::BatchEdit add_edit;
    add_edit.id = (*next_id)++;
    auto bag = std::make_unique<PqGramIndex>(RandomBag(
        rng, mirror->shape(), static_cast<int>(rng->Uniform(4, 16))));
    mirror->AddIndex(add_edit.id, *bag);
    add_edit.add = bag.get();
    batch.bags.push_back(std::move(bag));
    batch.edits.push_back(add_edit);

    for (TreeId id : present) {
      if (static_cast<int>(id % static_cast<uint32_t>(shards)) != k) {
        continue;
      }
      const PqGramIndex* current = mirror->Find(id);
      auto minus = std::make_unique<PqGramIndex>(RandomSubBag(rng, *current));
      auto plus = std::make_unique<PqGramIndex>(RandomBag(
          rng, mirror->shape(), static_cast<int>(rng->Uniform(0, 6))));
      PqGramIndex updated = *current;
      for (const auto& [fp, count] : minus->counts()) {
        updated.Remove(fp, count);
      }
      for (const auto& [fp, count] : plus->counts()) updated.Add(fp, count);
      mirror->AddIndex(id, std::move(updated));  // replaces
      PersistentForestIndex::BatchEdit update_edit;
      update_edit.id = id;
      update_edit.plus = plus.get();
      update_edit.minus = minus.get();
      batch.bags.push_back(std::move(plus));
      batch.bags.push_back(std::move(minus));
      batch.edits.push_back(update_edit);
      break;
    }
  }
  return batch;
}

// One sharded crash workload: a 3-shard store several group commits
// deep, then one shard-spanning group crashed at `point` (after
// `after_shard` shards passed that phase). Recovery must land on the
// manifest-consistent cut: the whole group rolled back for a crash
// before the manifest decide, the whole group rolled forward after it
// -- never a torn mix -- and the reconciled ticket/cursor must match.
void RunShardedGroupCrash(ShardedStore::GroupCrashPoint point,
                          int after_shard, int workload) {
  constexpr int kShards = 3;
  const PqShape shape{2, 3};
  const std::string path = TempPath(
      "crash_matrix_group_" + std::to_string(static_cast<int>(point)) + "_" +
      std::to_string(after_shard) + "_" + std::to_string(workload) +
      ".store");
  RemoveShardedStoreDir(path);

  Rng rng(0x5AD00 + static_cast<uint64_t>(workload) * 131 +
          static_cast<uint64_t>(after_shard) * 7 +
          static_cast<uint64_t>(point));
  ForestIndex mirror(shape);
  TreeId next_id = 0;
  uint64_t committed_cursor = 0;
  {
    StatusOr<std::unique_ptr<ShardedStore>> created =
        ShardedStore::Create(path, shape, kShards);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    std::unique_ptr<ShardedStore> store = std::move(created).value();

    // Seed every shard through one BulkAdd group commit.
    {
      std::vector<std::unique_ptr<PqGramIndex>> bags;
      std::vector<std::pair<TreeId, const PqGramIndex*>> refs;
      for (int i = 0; i < kShards * 2; ++i) {
        TreeId id = next_id++;
        bags.push_back(std::make_unique<PqGramIndex>(
            RandomBag(&rng, shape, static_cast<int>(rng.Uniform(4, 16)))));
        mirror.AddIndex(id, *bags.back());
        refs.emplace_back(id, bags.back().get());
      }
      ASSERT_TRUE(store->BulkAdd(refs, nullptr, ++committed_cursor).ok());
    }

    // A few committed shard-spanning groups.
    const int committed = 1 + workload % 3;
    for (int b = 0; b < committed; ++b) {
      PlannedBatch batch =
          PlanShardSpanningBatch(&rng, &mirror, &next_id, kShards);
      std::vector<Status> results;
      ASSERT_TRUE(store->ApplyBatch(batch.edits, &results, nullptr, nullptr,
                                    ++committed_cursor)
                      .ok());
      for (const Status& s : results) ASSERT_TRUE(s.ok()) << s.ToString();
    }

    // The torn group: crash between shard commits.
    const ForestIndex before = mirror;
    PlannedBatch batch =
        PlanShardSpanningBatch(&rng, &mirror, &next_id, kShards);
    const uint64_t crashed_ticket = store->committed_ticket() + 1;
    ASSERT_TRUE(store->CrashNextGroup(point, after_shard).ok());
    std::vector<Status> results;
    ASSERT_TRUE(store->ApplyBatch(batch.edits, &results, nullptr, nullptr,
                                  committed_cursor + 1)
                    .ok());

    // Reopen and reconcile. A crash before the manifest decide rolls
    // the whole group back; at or after it, the whole group forward.
    const bool rolls_forward =
        point != ShardedStore::GroupCrashPoint::kAfterPrepare;
    const ForestIndex& expected = rolls_forward ? mirror : before;
    const uint64_t expected_cursor =
        rolls_forward ? committed_cursor + 1 : committed_cursor;

    StatusOr<std::unique_ptr<ShardedStore>> reopened =
        ShardedStore::Open(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    (*reopened)->CheckConsistency();
    StatusOr<ForestIndex> recovered = (*reopened)->MaterializeForest();
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(*recovered == expected)
        << "point " << static_cast<int>(point) << " after_shard "
        << after_shard << " workload " << workload
        << ": recovery landed on a torn cut";
    EXPECT_EQ((*reopened)->replication_cursor(), expected_cursor);
    if (rolls_forward) {
      EXPECT_EQ((*reopened)->committed_ticket(), crashed_ticket);
    } else {
      EXPECT_LT((*reopened)->committed_ticket(), crashed_ticket);
    }

    // Per-shard WAL accounting: prepared-but-undecided WALs are
    // discarded, decided ones replayed, finished shards left none.
    int64_t replays = 0;
    int64_t discards = 0;
    for (int k = 0; k < kShards; ++k) {
      replays += (*reopened)->shard(k)->pager().wal_replays();
      discards += (*reopened)->shard(k)->pager().wal_discards();
    }
    switch (point) {
      case ShardedStore::GroupCrashPoint::kAfterPrepare:
        EXPECT_EQ(replays, 0);
        EXPECT_EQ(discards, after_shard + 1);
        break;
      case ShardedStore::GroupCrashPoint::kAfterManifest:
        EXPECT_EQ(replays, kShards);
        EXPECT_EQ(discards, 0);
        break;
      case ShardedStore::GroupCrashPoint::kAfterFinish:
        EXPECT_EQ(replays, kShards - (after_shard + 1));
        EXPECT_EQ(discards, 0);
        break;
    }

    // The recovered store must keep committing normally. On rollback
    // the crashed group's mirror edits never landed, so the follow-up
    // batch's expectation rebases on the recovered cut.
    if (!rolls_forward) mirror = before;
    PlannedBatch next =
        PlanShardSpanningBatch(&rng, &mirror, &next_id, kShards);
    std::vector<Status> next_results;
    ASSERT_TRUE((*reopened)
                    ->ApplyBatch(next.edits, &next_results)
                    .ok());
    StatusOr<ForestIndex> final_state = (*reopened)->MaterializeForest();
    ASSERT_TRUE(final_state.ok());
    EXPECT_TRUE(*final_state == mirror);
  }
  RemoveShardedStoreDir(path);
}

TEST(CrashMatrixTest, ShardedGroupCrashAfterPrepareRollsBack) {
  for (int after_shard = 0; after_shard < 3; ++after_shard) {
    for (int workload = 0; workload < 6; ++workload) {
      RunShardedGroupCrash(ShardedStore::GroupCrashPoint::kAfterPrepare,
                           after_shard, workload);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CrashMatrixTest, ShardedGroupCrashAfterManifestRollsForward) {
  for (int workload = 0; workload < 6; ++workload) {
    RunShardedGroupCrash(ShardedStore::GroupCrashPoint::kAfterManifest, 0,
                         workload);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashMatrixTest, ShardedGroupCrashMidFinishRollsForward) {
  for (int after_shard = 0; after_shard < 2; ++after_shard) {
    for (int workload = 0; workload < 6; ++workload) {
      RunShardedGroupCrash(ShardedStore::GroupCrashPoint::kAfterFinish,
                           after_shard, workload);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace pqidx
