// Tests for the Zhang-Shasha tree edit distance baseline.

#include <gtest/gtest.h>

#include "common/random.h"
#include "edit/edit_log.h"
#include "edit/edit_script.h"
#include "ted/zhang_shasha.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

int Ted(std::string_view a, std::string_view b) {
  Tree ta = MustParse(a);
  Tree tb = MustParse(b);
  return TreeEditDistance(ta, tb);
}

TEST(TedTest, IdenticalTreesHaveZeroDistance) {
  EXPECT_EQ(Ted("a", "a"), 0);
  EXPECT_EQ(Ted("a(b,c(e,f),d)", "a(b,c(e,f),d)"), 0);
}

TEST(TedTest, SingleRename) {
  EXPECT_EQ(Ted("a", "b"), 1);
  EXPECT_EQ(Ted("a(b,c)", "a(b,x)"), 1);
  EXPECT_EQ(Ted("a(b(c))", "a(x(c))"), 1);
}

TEST(TedTest, SingleInsertOrDelete) {
  EXPECT_EQ(Ted("a(b,c)", "a(b)"), 1);
  EXPECT_EQ(Ted("a(b)", "a(b,c)"), 1);
  EXPECT_EQ(Ted("a(b(c))", "a(c)"), 1);      // delete b
  EXPECT_EQ(Ted("a(b,c)", "a(x(b,c))"), 1);  // insert x
}

TEST(TedTest, ClassicExample) {
  // Zhang & Shasha's running example: distance 2
  // (f(d(a,c(b)),e) vs f(c(d(a,b)),e)).
  EXPECT_EQ(Ted("f(d(a,c(b)),e)", "f(c(d(a,b)),e)"), 2);
}

TEST(TedTest, CompletelyDifferentTrees) {
  // Best script renames both nodes.
  EXPECT_EQ(Ted("a(b)", "x(y)"), 2);
  // Chain vs siblings: the mapping cannot keep both b and c (ancestor
  // order would be violated), so one delete plus one insert is optimal.
  EXPECT_EQ(Ted("a(b(c))", "a(b,c)"), 2);
}

TEST(TedTest, Symmetry) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Tree a = GenerateRandomTree(nullptr, &rng, {.num_nodes = 12});
    Tree b = GenerateRandomTree(nullptr, &rng, {.num_nodes = 12});
    EXPECT_EQ(TreeEditDistance(a, b), TreeEditDistance(b, a));
  }
}

TEST(TedTest, BoundedBySizes) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Tree a = GenerateRandomTree(nullptr, &rng, {.num_nodes = 10});
    Tree b = GenerateRandomTree(nullptr, &rng, {.num_nodes = 14});
    int d = TreeEditDistance(a, b);
    EXPECT_GE(d, b.size() - a.size());
    EXPECT_LE(d, a.size() + b.size());
  }
}

TEST(TedTest, EditScriptLengthIsUpperBound) {
  // TED(T0, Tn) <= number of applied edit operations.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Tree t0 = GenerateRandomTree(nullptr, &rng, {.num_nodes = 15});
    Tree tn = t0.Clone();
    EditLog log;
    int ops = 1 + static_cast<int>(rng.NextBounded(6));
    GenerateEditScript(&tn, &rng, ops, EditScriptOptions{}, &log);
    EXPECT_LE(TreeEditDistance(t0, tn), ops);
  }
}

TEST(TedTest, TriangleInequalityOnSamples) {
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    Tree a = GenerateRandomTree(nullptr, &rng, {.num_nodes = 8});
    Tree b = GenerateRandomTree(nullptr, &rng, {.num_nodes = 8});
    Tree c = GenerateRandomTree(nullptr, &rng, {.num_nodes = 8});
    EXPECT_LE(TreeEditDistance(a, c),
              TreeEditDistance(a, b) + TreeEditDistance(b, c));
  }
}

TEST(TedTest, CrossDictionaryComparison) {
  // The two trees may use different dictionaries; labels compare by value.
  Tree a = MustParse("a(b,c)");
  Tree b = MustParse("a(b,c)");
  EXPECT_NE(a.dict_ptr().get(), b.dict_ptr().get());
  EXPECT_EQ(TreeEditDistance(a, b), 0);
}

}  // namespace
}  // namespace pqidx
