// Tests for the streaming index builder: event-level construction and
// exact equivalence with parse-then-build over XML.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/pqgram_index.h"
#include "core/streaming.h"
#include "test_util.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace pqidx {
namespace {

using ::pqidx::testing::AllTestShapes;

// Replays `tree` into a builder via Open/Close events.
PqGramIndex BuildViaEvents(const Tree& tree, const PqShape& shape) {
  StreamingIndexBuilder builder(shape);
  struct Frame {
    NodeId node;
    size_t child = 0;
  };
  std::vector<Frame> stack{{tree.root()}};
  builder.Open(tree.LabelString(tree.root()));
  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto kids = tree.children(frame.node);
    if (frame.child < kids.size()) {
      NodeId next = kids[frame.child++];
      builder.Open(tree.LabelString(next));
      stack.push_back({next});
      continue;
    }
    builder.Close();
    stack.pop_back();
  }
  return std::move(builder).Finish();
}

TEST(StreamingTest, SingleNode) {
  for (const PqShape& shape : AllTestShapes()) {
    StreamingIndexBuilder builder(shape);
    builder.Leaf("root");
    PqGramIndex streamed = std::move(builder).Finish();
    Tree tree = ParseTreeNotation("root").value();
    EXPECT_EQ(streamed, BuildIndex(tree, shape));
  }
}

TEST(StreamingTest, PaperExampleTree) {
  Tree tree = ParseTreeNotation("a(b,c(e,f),d)").value();
  for (const PqShape& shape : AllTestShapes()) {
    EXPECT_EQ(BuildViaEvents(tree, shape), BuildIndex(tree, shape))
        << "shape (" << shape.p << "," << shape.q << ")";
  }
}

TEST(StreamingTest, EventReplayMatchesBuildOnRandomTrees) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    Tree tree = GenerateRandomTree(
        nullptr, &rng,
        {.num_nodes = 1 + static_cast<int>(rng.NextBounded(80))});
    for (const PqShape& shape : AllTestShapes()) {
      ASSERT_EQ(BuildViaEvents(tree, shape), BuildIndex(tree, shape))
          << "shape (" << shape.p << "," << shape.q << ") tree "
          << ToNotation(tree);
    }
  }
}

TEST(StreamingTest, XmlStreamingMatchesParseThenBuild) {
  Rng rng(2);
  const PqShape shape{3, 3};
  for (int trial = 0; trial < 5; ++trial) {
    Tree doc = GenerateXmarkLike(nullptr, &rng, 400);
    std::string xml = WriteXml(doc);
    StatusOr<PqGramIndex> streamed = BuildIndexFromXml(xml, shape);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    StatusOr<Tree> parsed = ParseXml(xml);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*streamed, BuildIndex(*parsed, shape));
  }
}

TEST(StreamingTest, XmlWithAttributesAndText) {
  const char* xml =
      "<library genre=\"db\"><book id=\"1\"><title>Tree "
      "Patterns</title></book><note>mixed <b/> content</note></library>";
  for (const PqShape& shape : {PqShape{1, 2}, PqShape{3, 3}}) {
    StatusOr<PqGramIndex> streamed = BuildIndexFromXml(xml, shape);
    ASSERT_TRUE(streamed.ok());
    StatusOr<Tree> parsed = ParseXml(xml);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*streamed, BuildIndex(*parsed, shape));
  }
  // Options are honored identically.
  XmlParseOptions bare;
  bare.include_attributes = false;
  bare.include_text = false;
  StatusOr<PqGramIndex> streamed = BuildIndexFromXml(xml, PqShape{2, 2}, bare);
  ASSERT_TRUE(streamed.ok());
  StatusOr<Tree> parsed = ParseXml(xml, nullptr, bare);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*streamed, BuildIndex(*parsed, PqShape{2, 2}));
}

TEST(StreamingTest, MalformedXmlReportsError) {
  EXPECT_FALSE(BuildIndexFromXml("<a><b></a>", PqShape{2, 2}).ok());
  EXPECT_FALSE(BuildIndexFromXml("", PqShape{2, 2}).ok());
  EXPECT_FALSE(
      BuildIndexFromXmlFile("/nonexistent.xml", PqShape{2, 2}).ok());
}

TEST(StreamingTest, DeepDocumentUsesConstantStackPerLevel) {
  // A 50k-deep chain: the scanner and builder are iterative, so this
  // must not overflow the call stack.
  std::string xml;
  const int kDepth = 50000;
  for (int i = 0; i < kDepth; ++i) xml += "<d>";
  for (int i = 0; i < kDepth; ++i) xml += "</d>";
  StatusOr<PqGramIndex> streamed = BuildIndexFromXml(xml, PqShape{3, 3});
  ASSERT_TRUE(streamed.ok());
  // A chain of f=1 nodes: q windows per non-leaf (3), one for the leaf.
  EXPECT_EQ(streamed->size(), (kDepth - 1) * 3 + 1);
}

TEST(StreamingTest, MisuseAborts) {
  StreamingIndexBuilder builder(PqShape{2, 2});
  EXPECT_DEATH(StreamingIndexBuilder(PqShape{2, 2}).Close(),
               "Close without");
  builder.Leaf("a");
  EXPECT_DEATH(builder.Open("b"), "closed root");
  StreamingIndexBuilder open_builder(PqShape{2, 2});
  open_builder.Open("a");
  EXPECT_DEATH(std::move(open_builder).Finish(), "unclosed");
}

}  // namespace
}  // namespace pqidx
