// Tests for the ordered labeled tree substrate and the textual notation.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "tree/label_dict.h"
#include "tree/tree.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

TEST(LabelDictTest, InternIsIdempotent) {
  LabelDict dict;
  LabelId a = dict.Intern("alpha");
  LabelId b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.LabelString(a), "alpha");
  EXPECT_EQ(dict.size(), 3);  // null + 2
}

TEST(LabelDictTest, NullLabelProperties) {
  LabelDict dict;
  EXPECT_EQ(dict.LabelString(kNullLabelId), "*");
  EXPECT_EQ(dict.Hash(kNullLabelId), kNullLabelHash);
  EXPECT_EQ(dict.Find("never_interned"), kNullLabelId);
}

TEST(LabelDictTest, HashMatchesKarpRabin) {
  LabelDict dict;
  LabelId a = dict.Intern("some-label");
  EXPECT_EQ(dict.Hash(a), KarpRabinFingerprint("some-label"));
}

TEST(LabelDictTest, SerializationRoundTrip) {
  LabelDict dict;
  dict.Intern("a");
  dict.Intern("b");
  dict.Intern("");
  ByteWriter w;
  dict.Serialize(&w);
  ByteReader r(w.data());
  StatusOr<LabelDict> copy = LabelDict::Deserialize(&r);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->size(), dict.size());
  EXPECT_EQ(copy->Find("b"), dict.Find("b"));
  EXPECT_EQ(copy->Hash(copy->Find("b")), dict.Hash(dict.Find("b")));
}

TEST(TreeTest, BuildAndNavigate) {
  Tree tree = MustParse("a(b,c(e,f),d)");
  tree.CheckConsistency();
  EXPECT_EQ(tree.size(), 6);
  NodeId root = tree.root();
  EXPECT_EQ(tree.LabelString(root), "a");
  EXPECT_EQ(tree.fanout(root), 3);
  NodeId c = tree.child(root, 1);
  EXPECT_EQ(tree.LabelString(c), "c");
  EXPECT_EQ(tree.parent(c), root);
  EXPECT_EQ(tree.SiblingIndex(c), 1);
  EXPECT_EQ(tree.fanout(c), 2);
  EXPECT_TRUE(tree.IsLeaf(tree.child(c, 0)));
  EXPECT_EQ(tree.parent(root), kNullNodeId);
}

TEST(TreeTest, NotationRoundTrip) {
  for (const char* notation :
       {"a", "a(b)", "a(b,c(e,f),d)", "x(x(x(x)))", "r(a,a,a,a)"}) {
    Tree tree = MustParse(notation);
    EXPECT_EQ(ToNotation(tree), notation);
  }
}

TEST(TreeTest, NotationErrors) {
  EXPECT_FALSE(ParseTreeNotation("").ok());
  EXPECT_FALSE(ParseTreeNotation("a(b").ok());
  EXPECT_FALSE(ParseTreeNotation("a(b,)").ok());
  EXPECT_FALSE(ParseTreeNotation("a)b").ok());
  EXPECT_FALSE(ParseTreeNotation("a b").ok());
  EXPECT_FALSE(ParseTreeNotation("(a)").ok());
}

TEST(TreeTest, AncestorWalk) {
  Tree tree = MustParse("a(b(c(d)))");
  NodeId d = tree.child(tree.child(tree.child(tree.root(), 0), 0), 0);
  EXPECT_EQ(tree.Ancestor(d, 0), d);
  EXPECT_EQ(tree.Ancestor(d, 3), tree.root());
  EXPECT_EQ(tree.Ancestor(d, 4), kNullNodeId);
  EXPECT_EQ(tree.Ancestor(d, 10), kNullNodeId);
}

TEST(TreeTest, DescendantsWithin) {
  Tree tree = MustParse("a(b(c,d(e)),f)");
  std::vector<NodeId> out;
  NodeId b = tree.child(tree.root(), 0);
  tree.DescendantsWithin(b, 0, &out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  tree.DescendantsWithin(b, 1, &out);
  EXPECT_EQ(out.size(), 3u);  // b, c, d
  out.clear();
  tree.DescendantsWithin(b, 5, &out);
  EXPECT_EQ(out.size(), 4u);  // whole subtree
  out.clear();
  tree.DescendantsWithin(b, -1, &out);
  EXPECT_TRUE(out.empty());
}

TEST(TreeTest, PreOrderVisitsDocumentOrder) {
  Tree tree = MustParse("a(b(c),d,e(f,g))");
  std::vector<std::string> labels;
  tree.PreOrder([&](NodeId n) { labels.push_back(tree.LabelString(n)); });
  EXPECT_EQ(labels,
            (std::vector<std::string>{"a", "b", "c", "d", "e", "f", "g"}));
}

TEST(TreeTest, ApplyRename) {
  Tree tree = MustParse("a(b)");
  NodeId b = tree.child(tree.root(), 0);
  LabelId x = tree.mutable_dict()->Intern("x");
  EXPECT_TRUE(tree.ApplyRename(b, x).ok());
  EXPECT_EQ(tree.LabelString(b), "x");
  // Rename to the same label is undefined (paper: l != l').
  EXPECT_FALSE(tree.ApplyRename(b, x).ok());
  // Rename of a non-existent node fails.
  EXPECT_FALSE(tree.ApplyRename(999, x).ok());
  tree.CheckConsistency();
}

TEST(TreeTest, ApplyDeleteSplicesChildren) {
  Tree tree = MustParse("a(b,c(e,f),d)");
  NodeId c = tree.child(tree.root(), 1);
  ASSERT_TRUE(tree.ApplyDelete(c).ok());
  tree.CheckConsistency();
  EXPECT_EQ(ToNotation(tree), "a(b,e,f,d)");
  EXPECT_EQ(tree.size(), 5);
  EXPECT_FALSE(tree.Contains(c));
  // Sibling indexes are maintained.
  EXPECT_EQ(tree.SiblingIndex(tree.child(tree.root(), 3)), 3);
}

TEST(TreeTest, ApplyDeleteRootFails) {
  Tree tree = MustParse("a(b)");
  EXPECT_FALSE(tree.ApplyDelete(tree.root()).ok());
  EXPECT_FALSE(tree.ApplyDelete(12345).ok());
}

TEST(TreeTest, ApplyInsertAdoptsRange) {
  Tree tree = MustParse("a(b,e,f,d)");
  LabelId c = tree.mutable_dict()->Intern("c");
  NodeId n = tree.AllocateId();
  ASSERT_TRUE(tree.ApplyInsert(n, c, tree.root(), 1, 2).ok());
  tree.CheckConsistency();
  EXPECT_EQ(ToNotation(tree), "a(b,c(e,f),d)");
  EXPECT_EQ(tree.parent(n), tree.root());
  EXPECT_EQ(tree.SiblingIndex(n), 1);
  EXPECT_EQ(tree.fanout(n), 2);
}

TEST(TreeTest, ApplyInsertLeaf) {
  Tree tree = MustParse("a(b)");
  LabelId x = tree.mutable_dict()->Intern("x");
  NodeId n = tree.AllocateId();
  ASSERT_TRUE(tree.ApplyInsert(n, x, tree.child(tree.root(), 0), 0, 0).ok());
  EXPECT_EQ(ToNotation(tree), "a(b(x))");
  tree.CheckConsistency();
}

TEST(TreeTest, ApplyInsertValidation) {
  Tree tree = MustParse("a(b,c)");
  LabelId x = tree.mutable_dict()->Intern("x");
  // Reusing a live id fails.
  EXPECT_FALSE(tree.ApplyInsert(tree.root(), x, tree.root(), 0, 0).ok());
  // Unknown parent fails.
  EXPECT_FALSE(tree.ApplyInsert(tree.AllocateId(), x, 999, 0, 0).ok());
  // Out-of-bounds child range fails.
  EXPECT_FALSE(tree.ApplyInsert(tree.AllocateId(), x, tree.root(), 1, 2).ok());
  EXPECT_FALSE(tree.ApplyInsert(tree.AllocateId(), x, tree.root(), 3, 0).ok());
  EXPECT_FALSE(tree.ApplyInsert(tree.AllocateId(), x, tree.root(), -1, 0).ok());
  tree.CheckConsistency();
}

TEST(TreeTest, InsertDeleteInverseRestoresShape) {
  Tree tree = MustParse("a(b,c(e,f),d)");
  std::string before = ToNotationWithIds(tree);
  NodeId n = tree.AllocateId();
  LabelId x = tree.mutable_dict()->Intern("x");
  ASSERT_TRUE(tree.ApplyInsert(n, x, tree.root(), 0, 2).ok());
  ASSERT_TRUE(tree.ApplyDelete(n).ok());
  EXPECT_EQ(ToNotationWithIds(tree), before);
  tree.CheckConsistency();
}

TEST(TreeTest, CloneIsDeepAndIndependent) {
  Tree tree = MustParse("a(b,c)");
  Tree copy = tree.Clone();
  ASSERT_TRUE(tree.ApplyDelete(tree.child(tree.root(), 0)).ok());
  EXPECT_EQ(ToNotation(copy), "a(b,c)");
  EXPECT_EQ(ToNotation(tree), "a(c)");
  copy.CheckConsistency();
}

TEST(TreeTest, TreesIsomorphicComparesContentNotIds) {
  Tree a = MustParse("a(b,c(e,f),d)");
  Tree b = MustParse("a(b,c(e,f),d)");   // separate dictionary
  EXPECT_TRUE(TreesIsomorphic(a, b));
  EXPECT_TRUE(TreesIsomorphic(a, a));

  Tree label_diff = MustParse("a(b,c(e,x),d)");
  EXPECT_FALSE(TreesIsomorphic(a, label_diff));
  Tree shape_diff = MustParse("a(b,c(e(f)),d)");
  EXPECT_FALSE(TreesIsomorphic(a, shape_diff));
  Tree order_diff = MustParse("a(c(e,f),b,d)");
  EXPECT_FALSE(TreesIsomorphic(a, order_diff));

  // Ids differ after churn but content-equal trees still compare equal.
  Tree churned = MustParse("a(b,x,d)");
  NodeId x = churned.child(churned.root(), 1);
  LabelId c_label = churned.mutable_dict()->Intern("c");
  ASSERT_TRUE(churned.ApplyRename(x, c_label).ok());
  churned.AddChild(x, "e");
  churned.AddChild(x, "f");
  EXPECT_TRUE(TreesIsomorphic(a, churned));
}

TEST(TreeTest, SiblingIndexMaintainedUnderChurn) {
  Rng rng(42);
  Tree tree = MustParse("r");
  LabelId l = tree.mutable_dict()->Intern("n");
  // Random inserts and deletes, verifying consistency throughout.
  std::vector<NodeId> alive{tree.root()};
  for (int step = 0; step < 300; ++step) {
    if (rng.Bernoulli(0.6) || alive.size() <= 1) {
      NodeId parent = alive[rng.NextBounded(alive.size())];
      int f = tree.fanout(parent);
      int k = static_cast<int>(rng.Uniform(0, f));
      int count = static_cast<int>(rng.Uniform(0, f - k));
      NodeId n = tree.AllocateId();
      ASSERT_TRUE(tree.ApplyInsert(n, l, parent, k, count).ok());
      alive.push_back(n);
    } else {
      size_t idx = 1 + rng.NextBounded(alive.size() - 1);
      ASSERT_TRUE(tree.ApplyDelete(alive[idx]).ok());
      alive[idx] = alive.back();
      alive.pop_back();
    }
  }
  tree.CheckConsistency();
}

}  // namespace
}  // namespace pqidx
