// Tests for the XML parser and writer.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace pqidx {
namespace {

Tree MustParseXml(std::string_view xml, const XmlParseOptions& options = {}) {
  StatusOr<Tree> tree = ParseXml(xml, nullptr, options);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

TEST(XmlParserTest, SimpleElements) {
  Tree tree = MustParseXml("<a><b/><c><e/><f/></c><d/></a>");
  EXPECT_EQ(ToNotation(tree), "a(b,c(e,f),d)");
  tree.CheckConsistency();
}

TEST(XmlParserTest, TextContentBecomesLeaves) {
  Tree tree = MustParseXml("<title>Approximate Lookups</title>");
  ASSERT_EQ(tree.fanout(tree.root()), 1);
  EXPECT_EQ(tree.LabelString(tree.child(tree.root(), 0)),
            "Approximate Lookups");
}

TEST(XmlParserTest, WhitespaceOnlyTextIgnored) {
  Tree tree = MustParseXml("<a>\n  <b/>\n  <c/>\n</a>");
  EXPECT_EQ(ToNotation(tree), "a(b,c)");
}

TEST(XmlParserTest, AttributesBecomeAtChildren) {
  Tree tree = MustParseXml("<a x=\"1\" y='two'><b/></a>");
  EXPECT_EQ(ToNotation(tree), "a(@x(1),@y(two),b)");
}

TEST(XmlParserTest, AttributesCanBeDisabled) {
  XmlParseOptions options;
  options.include_attributes = false;
  Tree tree = MustParseXml("<a x=\"1\"><b/></a>", options);
  EXPECT_EQ(ToNotation(tree), "a(b)");
}

TEST(XmlParserTest, TextCanBeDisabled) {
  XmlParseOptions options;
  options.include_text = false;
  Tree tree = MustParseXml("<a>hello<b/>world</a>", options);
  EXPECT_EQ(ToNotation(tree), "a(b)");
}

TEST(XmlParserTest, EntitiesAndCharRefs) {
  Tree tree = MustParseXml("<a>&lt;x&gt; &amp; &#65;&#x42;</a>");
  EXPECT_EQ(tree.LabelString(tree.child(tree.root(), 0)), "<x> & AB");
}

TEST(XmlParserTest, CdataSection) {
  Tree tree = MustParseXml("<a><![CDATA[<raw> & data]]></a>");
  EXPECT_EQ(tree.LabelString(tree.child(tree.root(), 0)), "<raw> & data");
}

TEST(XmlParserTest, PrologCommentsAndPI) {
  Tree tree = MustParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE a [<!ELEMENT a ANY>]>\n"
      "<!-- comment -->\n"
      "<a><!-- inner --><b/><?pi data?></a>\n"
      "<!-- trailing -->");
  EXPECT_EQ(ToNotation(tree), "a(b)");
}

TEST(XmlParserTest, MixedContentOrderPreserved) {
  Tree tree = MustParseXml("<p>one<b/>two</p>");
  ASSERT_EQ(tree.fanout(tree.root()), 3);
  EXPECT_EQ(tree.LabelString(tree.child(tree.root(), 0)), "one");
  EXPECT_EQ(tree.LabelString(tree.child(tree.root(), 1)), "b");
  EXPECT_EQ(tree.LabelString(tree.child(tree.root(), 2)), "two");
}

TEST(XmlParserTest, Errors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("no markup").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a foo></a>").ok());
  EXPECT_FALSE(ParseXml("<a foo=bar></a>").ok());
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("<a><!-- unterminated</a>").ok());
}

TEST(XmlWriterTest, ElementsRoundTrip) {
  const char* xml = "<a><b/><c><e/><f/></c><d/></a>";
  Tree tree = MustParseXml(xml);
  EXPECT_EQ(WriteXml(tree), xml);
}

TEST(XmlWriterTest, AttributesAndTextRoundTrip) {
  Tree tree = MustParseXml("<a x=\"1\"><b>hello &amp; more</b></a>");
  std::string out = WriteXml(tree);
  Tree reparsed = MustParseXml(out);
  EXPECT_EQ(ToNotation(reparsed), ToNotation(tree));
}

TEST(XmlWriterTest, EscapingInTextAndAttributes) {
  Tree tree(std::make_shared<LabelDict>());
  NodeId root = tree.CreateRoot("a");
  NodeId attr = tree.AddChild(root, "@k");
  tree.AddChild(attr, "va\"l<ue");
  tree.AddChild(root, "te<x>t & more");
  std::string out = WriteXml(tree);
  Tree reparsed = MustParseXml(out);
  EXPECT_EQ(ToNotation(reparsed), ToNotation(tree));
}

TEST(XmlWriterTest, IndentedOutputReparsesEquivalently) {
  Tree tree = MustParseXml("<a x=\"1\"><b><c/></b><d>text here</d></a>");
  XmlWriteOptions options;
  options.indent = true;
  std::string pretty = WriteXml(tree, options);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  Tree reparsed = MustParseXml(pretty);
  EXPECT_EQ(ToNotation(reparsed), ToNotation(tree));
}

TEST(XmlWriterTest, DeepDocumentDoesNotOverflowStack) {
  // 50k-deep chain: the writer is iterative.
  auto dict = std::make_shared<LabelDict>();
  Tree tree(dict);
  NodeId cur = tree.CreateRoot("d");
  for (int i = 0; i < 50000; ++i) cur = tree.AddChild(cur, "d");
  std::string xml = WriteXml(tree);
  // 50000 wrappers of <d>...</d> plus the innermost <d/>.
  EXPECT_EQ(xml.size(), 50000u * 7 + 4);
  Tree reparsed = MustParseXml(xml);
  EXPECT_EQ(reparsed.size(), tree.size());
}

TEST(XmlRoundTripTest, GeneratedTreeSurvivesWriteParse) {
  // Writer/parser round-trip on an XMark-like document.
  Rng rng(1);
  Tree doc = GenerateXmarkLike(nullptr, &rng, 400);
  std::string xml = WriteXml(doc);
  Tree reparsed = MustParseXml(xml);
  EXPECT_EQ(ToNotation(reparsed), ToNotation(doc));
}

}  // namespace
}  // namespace pqidx
