// Tests for the page file + buffer pool + write-ahead log substrate,
// including crash-recovery semantics.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/random.h"
#include "common/serde.h"
#include "storage/pager.h"

namespace pqidx {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void FillPage(uint8_t* page, uint8_t seed) {
  for (int i = 0; i < kPageSize; ++i) {
    page[i] = static_cast<uint8_t>(seed + i);
  }
}

bool PageMatches(const uint8_t* page, uint8_t seed) {
  for (int i = 0; i < kPageSize; ++i) {
    if (page[i] != static_cast<uint8_t>(seed + i)) return false;
  }
  return true;
}

TEST(PagerTest, AllocateWriteCommitReopen) {
  std::string path = TempPath("pager_basic.db");
  {
    Pager pager;
    ASSERT_TRUE(pager.Open(path, /*create=*/true).ok());
    StatusOr<PageId> p0 = pager.AllocatePage();
    StatusOr<PageId> p1 = pager.AllocatePage();
    ASSERT_TRUE(p0.ok() && p1.ok());
    EXPECT_EQ(*p0, 0u);
    EXPECT_EQ(*p1, 1u);
    FillPage(pager.MutablePage(*p0).value(), 10);
    FillPage(pager.MutablePage(*p1).value(), 20);
    ASSERT_TRUE(pager.Commit().ok());
    ASSERT_TRUE(pager.Close().ok());
  }
  Pager pager;
  ASSERT_TRUE(pager.Open(path, /*create=*/false).ok());
  EXPECT_EQ(pager.page_count(), 2u);
  EXPECT_TRUE(PageMatches(pager.ReadPage(0).value(), 10));
  EXPECT_TRUE(PageMatches(pager.ReadPage(1).value(), 20));
}

TEST(PagerTest, OutOfRangeReads) {
  Pager pager;
  ASSERT_TRUE(pager.Open(TempPath("pager_range.db"), true).ok());
  EXPECT_FALSE(pager.ReadPage(0).ok());
  ASSERT_TRUE(pager.AllocatePage().ok());
  EXPECT_TRUE(pager.ReadPage(0).ok());
  EXPECT_FALSE(pager.ReadPage(1).ok());
  EXPECT_FALSE(pager.MutablePage(7).ok());
}

TEST(PagerTest, RollbackDiscardsChanges) {
  std::string path = TempPath("pager_rollback.db");
  Pager pager;
  ASSERT_TRUE(pager.Open(path, true).ok());
  StatusOr<PageId> p0 = pager.AllocatePage();
  FillPage(pager.MutablePage(*p0).value(), 1);
  ASSERT_TRUE(pager.Commit().ok());

  // Uncommitted overwrite + allocation, then rollback.
  FillPage(pager.MutablePage(*p0).value(), 99);
  ASSERT_TRUE(pager.AllocatePage().ok());
  EXPECT_EQ(pager.page_count(), 2u);
  ASSERT_TRUE(pager.Rollback().ok());
  EXPECT_EQ(pager.page_count(), 1u);
  EXPECT_TRUE(PageMatches(pager.ReadPage(0).value(), 1));
}

TEST(PagerTest, UncommittedChangesNotVisibleAfterReopen) {
  std::string path = TempPath("pager_lost.db");
  {
    Pager pager;
    ASSERT_TRUE(pager.Open(path, true).ok());
    ASSERT_TRUE(pager.AllocatePage().ok());
    FillPage(pager.MutablePage(0).value(), 5);
    ASSERT_TRUE(pager.Commit().ok());
    FillPage(pager.MutablePage(0).value(), 66);  // never committed
    ASSERT_TRUE(pager.Close().ok());
  }
  Pager pager;
  ASSERT_TRUE(pager.Open(path, false).ok());
  EXPECT_TRUE(PageMatches(pager.ReadPage(0).value(), 5));
}

TEST(PagerTest, EvictionKeepsDataCorrect) {
  std::string path = TempPath("pager_evict.db");
  Pager pager(/*pool_pages=*/8);
  ASSERT_TRUE(pager.Open(path, true).ok());
  const int kPages = 64;  // far beyond the pool
  for (int i = 0; i < kPages; ++i) {
    StatusOr<PageId> id = pager.AllocatePage();
    ASSERT_TRUE(id.ok());
    FillPage(pager.MutablePage(*id).value(), static_cast<uint8_t>(i));
  }
  ASSERT_TRUE(pager.Commit().ok());
  // Random access pattern forcing evictions and re-reads.
  Rng rng(1);
  for (int probe = 0; probe < 500; ++probe) {
    PageId id = static_cast<PageId>(rng.NextBounded(kPages));
    ASSERT_TRUE(PageMatches(pager.ReadPage(id).value(),
                            static_cast<uint8_t>(id)));
  }
  EXPECT_GT(pager.cache_misses(), 0);
  EXPECT_GT(pager.cache_hits(), 0);
}

// A transaction may dirty more pages than the pool holds. Dirty frames
// are pinned (unevictable) until Commit, so the pool legitimately
// overflows its capacity; reads of committed pages must still fault in
// and resolve correctly while every eviction candidate is pinned, and
// the oversized commit must leave the file consistent.
TEST(PagerTest, TransactionLargerThanPoolStaysCorrect) {
  std::string path = TempPath("pager_bigtxn.db");
  const int kPages = 48;  // 6x the pool
  {
    Pager pager(/*pool_pages=*/8);
    ASSERT_TRUE(pager.Open(path, true).ok());
    for (int i = 0; i < kPages; ++i) {
      ASSERT_TRUE(pager.AllocatePage().ok());
      FillPage(pager.MutablePage(static_cast<PageId>(i)).value(),
               static_cast<uint8_t>(i));
    }
    ASSERT_TRUE(pager.Commit().ok());

    // Dirty every page again in one transaction, interleaved with reads
    // of earlier (already re-dirtied, pinned) and later (clean, faulted
    // from disk) pages while the pool is saturated with pinned frames.
    Rng rng(7);
    for (int i = 0; i < kPages; ++i) {
      FillPage(pager.MutablePage(static_cast<PageId>(i)).value(),
               static_cast<uint8_t>(i + 100));
      PageId probe = static_cast<PageId>(rng.NextBounded(kPages));
      uint8_t expect = static_cast<uint8_t>(
          probe <= static_cast<PageId>(i) ? probe + 100 : probe);
      ASSERT_TRUE(PageMatches(pager.ReadPage(probe).value(), expect));
    }
    ASSERT_TRUE(pager.Commit().ok());
    ASSERT_TRUE(pager.Close().ok());
  }
  Pager pager(/*pool_pages=*/8);
  ASSERT_TRUE(pager.Open(path, false).ok());
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(PageMatches(pager.ReadPage(static_cast<PageId>(i)).value(),
                            static_cast<uint8_t>(i + 100)));
  }
}

TEST(PagerTest, CrashAfterWalSealRecoversCommittedState) {
  std::string path = TempPath("pager_crash1.db");
  {
    Pager pager;
    ASSERT_TRUE(pager.Open(path, true).ok());
    ASSERT_TRUE(pager.AllocatePage().ok());
    FillPage(pager.MutablePage(0).value(), 1);
    ASSERT_TRUE(pager.Commit().ok());
    // Second transaction: sealed WAL, nothing applied in place.
    FillPage(pager.MutablePage(0).value(), 2);
    ASSERT_TRUE(pager.AllocatePage().ok());
    FillPage(pager.MutablePage(1).value(), 3);
    ASSERT_TRUE(
        pager.CommitWithCrash(Pager::CrashPoint::kAfterWalSeal).ok());
  }
  // A sealed WAL is durable: recovery must replay the transaction.
  Pager pager;
  ASSERT_TRUE(pager.Open(path, false).ok());
  EXPECT_EQ(pager.page_count(), 2u);
  EXPECT_TRUE(PageMatches(pager.ReadPage(0).value(), 2));
  EXPECT_TRUE(PageMatches(pager.ReadPage(1).value(), 3));
}

TEST(PagerTest, CrashDuringInPlaceWritesRecovers) {
  std::string path = TempPath("pager_crash2.db");
  {
    Pager pager;
    ASSERT_TRUE(pager.Open(path, true).ok());
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(pager.AllocatePage().ok());
    for (PageId i = 0; i < 4; ++i) {
      FillPage(pager.MutablePage(i).value(), static_cast<uint8_t>(i));
    }
    ASSERT_TRUE(pager.Commit().ok());
    for (PageId i = 0; i < 4; ++i) {
      FillPage(pager.MutablePage(i).value(), static_cast<uint8_t>(100 + i));
    }
    ASSERT_TRUE(
        pager.CommitWithCrash(Pager::CrashPoint::kDuringInPlace).ok());
  }
  // The main file is torn (only one page written); replay fixes it.
  Pager pager;
  ASSERT_TRUE(pager.Open(path, false).ok());
  for (PageId i = 0; i < 4; ++i) {
    EXPECT_TRUE(PageMatches(pager.ReadPage(i).value(),
                            static_cast<uint8_t>(100 + i)))
        << "page " << i;
  }
}

TEST(PagerTest, TornWalTailIsDiscarded) {
  std::string path = TempPath("pager_torn.db");
  {
    Pager pager;
    ASSERT_TRUE(pager.Open(path, true).ok());
    ASSERT_TRUE(pager.AllocatePage().ok());
    FillPage(pager.MutablePage(0).value(), 7);
    ASSERT_TRUE(pager.Commit().ok());
    FillPage(pager.MutablePage(0).value(), 8);
    ASSERT_TRUE(
        pager.CommitWithCrash(Pager::CrashPoint::kAfterWalSeal).ok());
  }
  // Truncate the WAL mid-record: the seal is gone, so the transaction
  // must be discarded, not half-applied.
  std::string wal = path + ".wal";
  std::string data;
  ASSERT_TRUE(ReadFile(wal, &data).ok());
  ASSERT_TRUE(WriteFile(wal, std::string_view(data).substr(
                                 0, data.size() / 2))
                  .ok());
  Pager pager;
  ASSERT_TRUE(pager.Open(path, false).ok());
  EXPECT_TRUE(PageMatches(pager.ReadPage(0).value(), 7));  // old state
}

TEST(PagerTest, CorruptWalRecordIsDiscarded) {
  std::string path = TempPath("pager_corrupt.db");
  {
    Pager pager;
    ASSERT_TRUE(pager.Open(path, true).ok());
    ASSERT_TRUE(pager.AllocatePage().ok());
    FillPage(pager.MutablePage(0).value(), 7);
    ASSERT_TRUE(pager.Commit().ok());
    FillPage(pager.MutablePage(0).value(), 8);
    ASSERT_TRUE(
        pager.CommitWithCrash(Pager::CrashPoint::kAfterWalSeal).ok());
  }
  // Flip a byte inside the page image: the checksum must reject it.
  std::string wal = path + ".wal";
  std::string data;
  ASSERT_TRUE(ReadFile(wal, &data).ok());
  data[20] = static_cast<char>(data[20] ^ 0xff);
  ASSERT_TRUE(WriteFile(wal, data).ok());
  Pager pager;
  ASSERT_TRUE(pager.Open(path, false).ok());
  EXPECT_TRUE(PageMatches(pager.ReadPage(0).value(), 7));
}

TEST(PagerTest, EmptyCommitIsNoOp) {
  Pager pager;
  ASSERT_TRUE(pager.Open(TempPath("pager_noop.db"), true).ok());
  EXPECT_TRUE(pager.Commit().ok());
  EXPECT_EQ(pager.commits(), 0);
  ASSERT_TRUE(pager.AllocatePage().ok());
  EXPECT_TRUE(pager.Commit().ok());
  EXPECT_EQ(pager.commits(), 1);
  EXPECT_TRUE(pager.Commit().ok());  // nothing dirty again
  EXPECT_EQ(pager.commits(), 1);
}

TEST(PagerTest, InjectedWalWriteFailurePoisonsAndRecovers) {
  std::string path = TempPath("pager_inject1.db");
  {
    Pager pager;
    ASSERT_TRUE(pager.Open(path, true).ok());
    ASSERT_TRUE(pager.AllocatePage().ok());
    FillPage(pager.MutablePage(0).value(), 9);
    ASSERT_TRUE(pager.Commit().ok());

    FillPage(pager.MutablePage(0).value(), 10);
    pager.InjectWriteFailureAfter(0);  // the very first WAL write fails
    Status status = pager.Commit();
    EXPECT_FALSE(status.ok());
    EXPECT_TRUE(pager.poisoned());
    // Every subsequent operation refuses until reopen.
    EXPECT_FALSE(pager.ReadPage(0).ok());
    EXPECT_FALSE(pager.MutablePage(0).ok());
    EXPECT_FALSE(pager.AllocatePage().ok());
    EXPECT_FALSE(pager.Commit().ok());
    ASSERT_TRUE(pager.Close().ok());
  }
  // Reopen: the failed transaction never became durable.
  Pager pager;
  ASSERT_TRUE(pager.Open(path, false).ok());
  EXPECT_FALSE(pager.poisoned());
  EXPECT_TRUE(PageMatches(pager.ReadPage(0).value(), 9));
}

TEST(PagerTest, InjectedInPlaceWriteFailureStillDurable) {
  std::string path = TempPath("pager_inject2.db");
  {
    Pager pager;
    ASSERT_TRUE(pager.Open(path, true).ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(pager.AllocatePage().ok());
    for (PageId i = 0; i < 3; ++i) {
      FillPage(pager.MutablePage(i).value(), static_cast<uint8_t>(i));
    }
    ASSERT_TRUE(pager.Commit().ok());

    for (PageId i = 0; i < 3; ++i) {
      FillPage(pager.MutablePage(i).value(), static_cast<uint8_t>(50 + i));
    }
    // Let the whole WAL succeed -- 1 magic + 3 records x 3 writes +
    // 4 seal writes = 14 -- then fail during the in-place phase: the
    // transaction is durable via the WAL.
    pager.InjectWriteFailureAfter(14);
    Status status = pager.Commit();
    EXPECT_FALSE(status.ok());
    EXPECT_TRUE(pager.poisoned());
    ASSERT_TRUE(pager.Close().ok());
  }
  Pager pager;
  ASSERT_TRUE(pager.Open(path, false).ok());
  for (PageId i = 0; i < 3; ++i) {
    EXPECT_TRUE(PageMatches(pager.ReadPage(i).value(),
                            static_cast<uint8_t>(50 + i)))
        << "page " << i;
  }
}

TEST(PagerTest, RejectsGarbageFiles) {
  std::string path = TempPath("pager_garbage.db");
  ASSERT_TRUE(WriteFile(path, "definitely not a page file").ok());
  Pager pager;
  EXPECT_FALSE(pager.Open(path, false).ok());
}

}  // namespace
}  // namespace pqidx
