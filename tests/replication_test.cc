// Tests for the replication subsystem (src/service/replication.h):
// hub resume/drop policy at the unit level, Server::ApplyReplicated
// semantics, and end-to-end leader/follower convergence -- a follower
// bootstrapped from nothing reaches bit-identical lookups, a follower
// killed mid-stream catches up from its durable cursor with deltas
// only, and a follower whose cursor fell out of the leader's history
// window falls back to a streamed snapshot. The stress case runs the
// pipelined commit path (depth > 1) against a live subscriber and
// concurrent follower reads, and is a TSan target (see
// .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/forest_index.h"
#include "core/incremental.h"
#include "edit/edit_script.h"
#include "service/client.h"
#include "service/replication.h"
#include "service/server.h"
#include "service/transport.h"
#include "service/wire.h"
#include "storage/sharded_store.h"
#include "test_util.h"
#include "tree/generators.h"

namespace pqidx {
namespace {

// One exclusive scratch dir per test process: parallel `ctest -j`
// shards (one process per discovered test) and back-to-back reruns
// never collide on the fixed store names below.
std::string TempPath(const std::string& name) {
  static pqidx::testing::ScopedTempDir dir;
  return dir.File(name);
}

// Tests reuse fixed store names under TempDir(). Leader stores are
// truncated by MustCreate, but a follower opens-or-creates its path --
// a store left over from a previous run would resume from a stale
// durable cursor, so each test wipes its follower store(s) up front.
void RemoveStore(const std::string& name) {
  std::remove(TempPath(name).c_str());
  std::remove((TempPath(name) + ".wal").c_str());
}

using StorePtr = std::unique_ptr<ShardedStore>;

StorePtr MustCreate(const std::string& name, PqShape shape) {
  StatusOr<StorePtr> store =
      ShardedStore::Create(TempPath(name), shape);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

// A leader service on an in-process pipe transport (same harness as
// service_test.cc).
struct LeaderService {
  explicit LeaderService(const std::string& name, PqShape shape,
                         ServerOptions options = ServerOptions()) {
    index = MustCreate(name, shape);
    server = std::make_unique<Server>(index.get(), options);
    auto listener = std::make_unique<PipeListener>();
    connect_point = listener.get();
    Status started = server->Start(std::move(listener));
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<Client> MustConnect() {
    StatusOr<std::unique_ptr<Connection>> conn = connect_point->Connect();
    EXPECT_TRUE(conn.ok());
    StatusOr<std::unique_ptr<Client>> client =
        Client::Connect(std::move(conn).value());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  StorePtr index;
  std::unique_ptr<Server> server;
  PipeListener* connect_point = nullptr;
};

// A follower wired to a leader's pipe connect point, serving its own
// reads on a second pipe listener.
struct FollowerHarness {
  FollowerHarness(PipeListener* leader_point, const std::string& store,
                  ServerOptions server_options = ServerOptions()) {
    FollowerOptions options;
    options.dial = [leader_point] { return leader_point->Connect(); };
    auto point = serve_point;
    options.listen = [point]() -> StatusOr<std::unique_ptr<Listener>> {
      auto listener = std::make_unique<PipeListener>();
      point->store(listener.get());
      std::unique_ptr<Listener> base = std::move(listener);
      return base;
    };
    options.store_path = TempPath(store);
    options.server = server_options;
    options.backoff.initial_backoff_us = 1000;
    options.backoff.max_backoff_us = 50000;
    follower = std::make_unique<Follower>(std::move(options));
  }

  std::unique_ptr<Client> MustConnect() {
    PipeListener* listener = serve_point->load();
    EXPECT_NE(listener, nullptr);
    StatusOr<std::unique_ptr<Connection>> conn = listener->Connect();
    EXPECT_TRUE(conn.ok());
    StatusOr<std::unique_ptr<Client>> client =
        Client::Connect(std::move(conn).value());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  // Shared with the listen callback, which outlives a serving-stack
  // rebuild; holds the latest listener the follower accepts on.
  std::shared_ptr<std::atomic<PipeListener*>> serve_point =
      std::make_shared<std::atomic<PipeListener*>>(nullptr);
  std::unique_ptr<Follower> follower;
};

// Waits until the follower's durable cursor has caught the leader's
// newest published ticket, re-reading the target until it is stable
// (a batch may publish after its client response is observed).
uint64_t MustConverge(Server* leader, Follower* follower,
                      int64_t timeout_ms = 30000) {
  uint64_t target = leader->hub()->last_ticket();
  for (;;) {
    EXPECT_TRUE(follower->WaitForCursor(target, timeout_ms))
        << "follower stalled at " << follower->cursor() << " short of "
        << target << "; stream: " << follower->stream_status().ToString();
    uint64_t again = leader->hub()->last_ticket();
    if (again == target) return target;
    target = again;
  }
}

// The acceptance bar: leader, follower, and the in-memory library
// agree -- leader vs follower bit-identical (same bytes traveled, same
// merge ran), both matching the library to double precision.
void ExpectIdenticalLookups(Client* leader, Client* follower,
                            const ForestIndex& library, const Tree& query,
                            double tau) {
  StatusOr<std::vector<LookupResult>> at_leader = leader->Lookup(query, tau);
  StatusOr<std::vector<LookupResult>> at_follower =
      follower->Lookup(query, tau);
  ASSERT_TRUE(at_leader.ok()) << at_leader.status().ToString();
  ASSERT_TRUE(at_follower.ok()) << at_follower.status().ToString();
  std::vector<LookupResult> local = library.Lookup(query, tau);
  ASSERT_EQ(at_leader->size(), at_follower->size());
  ASSERT_EQ(at_leader->size(), local.size());
  for (size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ((*at_leader)[i].tree_id, (*at_follower)[i].tree_id);
    EXPECT_EQ((*at_leader)[i].distance, (*at_follower)[i].distance);
    EXPECT_EQ((*at_leader)[i].tree_id, local[i].tree_id);
    EXPECT_DOUBLE_EQ((*at_leader)[i].distance, local[i].distance);
  }
}

// --- hub ----------------------------------------------------------------

TEST(ReplicationHubTest, ResumeDecisionsAreRangeChecks) {
  ReplicationHubOptions options;
  options.history = 2;
  options.max_queue = 8;
  ReplicationHub hub(options);
  hub.Initialize(10);

  // At the base with nothing published: a seamless (empty) delta resume.
  Subscription at_base;
  EXPECT_EQ(hub.Register(&at_base, 10, false, 10),
            ReplicationHub::Resume::kDelta);
  ReplicatedFrame frame;
  EXPECT_EQ(at_base.Wait(1000, &frame), Subscription::Next::kTimeout);
  hub.Unregister(&at_base);

  // Below the base, beyond the newest ticket, or forced: snapshot.
  Subscription below;
  EXPECT_EQ(hub.Register(&below, 9, false, 10),
            ReplicationHub::Resume::kSnapshot);
  hub.Unregister(&below);
  Subscription future;
  EXPECT_EQ(hub.Register(&future, 11, false, 10),
            ReplicationHub::Resume::kSnapshot);
  hub.Unregister(&future);
  Subscription forced;
  EXPECT_EQ(hub.Register(&forced, 10, true, 10),
            ReplicationHub::Resume::kSnapshot);
  hub.Unregister(&forced);

  // Publish 11..13 through a history of 2: frame 11 is evicted and the
  // base advances to it -- cursor 11 still delta-resumes (12 and 13 are
  // retained), cursor 10 no longer does.
  hub.Publish(11, {std::string("a")});
  hub.Publish(12, {std::string("b")});
  hub.Publish(13, {std::string("c")});
  EXPECT_EQ(hub.last_ticket(), 13u);

  Subscription resumed;
  EXPECT_EQ(hub.Register(&resumed, 11, false, 13),
            ReplicationHub::Resume::kDelta);
  ASSERT_EQ(resumed.Wait(1000, &frame), Subscription::Next::kFrame);
  EXPECT_EQ(frame.ticket, 12u);
  ASSERT_EQ(resumed.Wait(1000, &frame), Subscription::Next::kFrame);
  EXPECT_EQ(frame.ticket, 13u);
  EXPECT_EQ(resumed.Wait(1000, &frame), Subscription::Next::kTimeout);
  hub.Unregister(&resumed);

  Subscription evicted;
  EXPECT_EQ(hub.Register(&evicted, 10, false, 13),
            ReplicationHub::Resume::kSnapshot);
  hub.Unregister(&evicted);

  // Shutdown finishes later subscribers immediately.
  hub.Shutdown();
  Subscription late;
  hub.Register(&late, 13, false, 13);
  EXPECT_EQ(late.Wait(1000, &frame), Subscription::Next::kDone);
  hub.Unregister(&late);
}

TEST(ReplicationHubTest, SlowSubscriberIsDropped) {
  ReplicationHubOptions options;
  options.history = 8;
  options.max_queue = 2;
  ReplicationHub hub(options);
  hub.Initialize(0);

  Subscription slow;
  ASSERT_EQ(hub.Register(&slow, 0, false, 0),
            ReplicationHub::Resume::kDelta);
  hub.Publish(1, {std::string("a")});
  hub.Publish(2, {std::string("b")});
  EXPECT_FALSE(slow.dropped());
  // The queue is at max_queue and nothing consumed: the next publish
  // disconnects the subscriber instead of blocking or growing.
  hub.Publish(3, {std::string("c")});
  EXPECT_TRUE(slow.dropped());
  ReplicatedFrame frame;
  EXPECT_EQ(slow.Wait(1000, &frame), Subscription::Next::kDone);
  hub.Unregister(&slow);

  // The hub itself is unharmed: a fresh subscriber delta-resumes.
  Subscription fresh;
  EXPECT_EQ(hub.Register(&fresh, 3, false, 3),
            ReplicationHub::Resume::kDelta);
  hub.Publish(4, {std::string("d")});
  ASSERT_EQ(fresh.Wait(1000, &frame), Subscription::Next::kFrame);
  EXPECT_EQ(frame.ticket, 4u);
  hub.Unregister(&fresh);
  hub.Shutdown();
}

// --- ApplyReplicated ----------------------------------------------------

DeltaFrame MakeAddFrame(uint64_t ticket, TreeId id, const Tree& tree,
                        PqShape shape) {
  DeltaFrame frame;
  frame.ticket = ticket;
  frame.last_chunk = true;
  DeltaEntry entry;
  entry.tree_id = id;
  entry.is_add = true;
  entry.plus = BuildIndex(tree, shape);
  frame.entries.push_back(std::move(entry));
  return frame;
}

TEST(ReplicationApplyTest, StampsCursorSkipsDuplicatesFlagsDivergence) {
  const PqShape shape{2, 3};
  StorePtr store = MustCreate("repl_apply.db", shape);
  ServerOptions options;
  options.read_only = true;
  Server server(store.get(), options);
  ASSERT_TRUE(server.Start(nullptr).ok());

  Rng rng(31);
  Tree first = GenerateDblpLike(nullptr, &rng, 30);
  Tree second = GenerateDblpLike(nullptr, &rng, 30);

  std::vector<DeltaFrame> batch;
  batch.push_back(MakeAddFrame(5, 1, first, shape));
  ASSERT_TRUE(server.ApplyReplicated(std::move(batch)).ok());
  EXPECT_EQ(store->replication_cursor(), 5u);

  // Replaying an already-durable ticket is a no-op, not a failure.
  std::vector<DeltaFrame> replay;
  replay.push_back(MakeAddFrame(5, 1, first, shape));
  ASSERT_TRUE(server.ApplyReplicated(std::move(replay)).ok());
  EXPECT_EQ(store->replication_cursor(), 5u);

  // Two frames coalesce into one local transaction.
  std::vector<DeltaFrame> pair;
  pair.push_back(MakeAddFrame(7, 2, second, shape));
  pair.push_back(MakeAddFrame(9, 3, first, shape));
  ASSERT_TRUE(server.ApplyReplicated(std::move(pair)).ok());
  EXPECT_EQ(store->replication_cursor(), 9u);

  // A frame the local store cannot apply (re-adding tree 1) is
  // divergence: surfaced as DATA_LOSS so the follower forces a
  // snapshot resync.
  std::vector<DeltaFrame> diverged;
  diverged.push_back(MakeAddFrame(11, 1, second, shape));
  Status status = server.ApplyReplicated(std::move(diverged));
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();

  server.Stop();
  StatusOr<PqGramIndex> on_disk = store->MaterializeIndex(2);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(*on_disk, BuildIndex(second, shape));
}

TEST(ReplicationApplyTest, WritableServerRejectsReplicatedFrames) {
  const PqShape shape{2, 3};
  StorePtr store = MustCreate("repl_apply_rw.db", shape);
  Server server(store.get(), ServerOptions());
  ASSERT_TRUE(server.Start(nullptr).ok());
  Rng rng(32);
  std::vector<DeltaFrame> batch;
  batch.push_back(
      MakeAddFrame(1, 1, GenerateDblpLike(nullptr, &rng, 10), shape));
  Status status = server.ApplyReplicated(std::move(batch));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
  server.Stop();
}

// --- end to end ---------------------------------------------------------

TEST(ReplicationFollowerTest, ConvergesFromEmptyToIdenticalLookups) {
  const PqShape shape{2, 3};
  RemoveStore("repl_follower_empty.db");
  LeaderService leader("repl_leader_empty.db", shape);
  FollowerHarness standby(leader.connect_point, "repl_follower_empty.db");
  ASSERT_TRUE(standby.follower->Start().ok());

  std::unique_ptr<Client> writer = leader.MustConnect();
  Rng rng(41);
  auto dict = std::make_shared<LabelDict>();
  ForestIndex library(shape);
  std::vector<Tree> trees;
  for (TreeId id = 0; id < 20; ++id) {
    trees.push_back(GenerateXmarkLike(dict, &rng, 60));
    ASSERT_TRUE(writer->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }
  for (int round = 0; round < 3; ++round) {
    for (TreeId id = 0; id < 5; ++id) {
      Tree& doc = trees[static_cast<size_t>(id)];
      EditLog log;
      GenerateEditScript(&doc, &rng, 10, EditScriptOptions{}, &log);
      ASSERT_TRUE(writer->ApplyEdits(id, doc, log).ok());
      ASSERT_TRUE(library.ApplyLog(id, doc, log).ok());
    }
  }

  MustConverge(leader.server.get(), standby.follower.get());
  // The leader was empty at subscribe time: every byte arrived as a
  // delta, no snapshot was ever shipped.
  EXPECT_EQ(standby.follower->snapshot_resyncs(), 0);

  std::unique_ptr<Client> reader = standby.MustConnect();
  for (double tau : {0.0, 0.4, 1.0}) {
    for (TreeId id = 0; id < 6; ++id) {
      ExpectIdenticalLookups(writer.get(), reader.get(), library,
                             trees[static_cast<size_t>(id)], tau);
    }
  }

  // The follower is a read-only standby end to end.
  Status rejected = reader->AddTree(999, trees[0]);
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition)
      << rejected.ToString();

  standby.follower->Stop();
  leader.server->Stop();
}

TEST(ReplicationFollowerTest, BootstrapsFromPopulatedLeaderBySnapshot) {
  const PqShape shape{2, 3};
  LeaderService leader("repl_leader_warm.db", shape);
  std::unique_ptr<Client> writer = leader.MustConnect();
  Rng rng(42);
  auto dict = std::make_shared<LabelDict>();
  ForestIndex library(shape);
  std::vector<Tree> trees;
  for (TreeId id = 0; id < 12; ++id) {
    trees.push_back(GenerateDblpLike(dict, &rng, 50));
    ASSERT_TRUE(writer->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }

  // Subscribing at cursor 0 against a non-empty leader must ship a
  // snapshot -- a delta resume would silently miss the existing trees.
  RemoveStore("repl_follower_warm.db");
  FollowerHarness standby(leader.connect_point, "repl_follower_warm.db");
  ASSERT_TRUE(standby.follower->Start().ok());
  EXPECT_EQ(standby.follower->snapshot_resyncs(), 1);

  // And the stream continues past the snapshot.
  for (TreeId id = 12; id < 16; ++id) {
    trees.push_back(GenerateDblpLike(dict, &rng, 50));
    ASSERT_TRUE(writer->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }
  MustConverge(leader.server.get(), standby.follower.get());

  std::unique_ptr<Client> reader = standby.MustConnect();
  for (TreeId id = 0; id < 16; id += 3) {
    ExpectIdenticalLookups(writer.get(), reader.get(), library,
                           trees[static_cast<size_t>(id)], 0.6);
  }
  standby.follower->Stop();
  leader.server->Stop();
}

TEST(ReplicationFollowerTest, KilledMidStreamCatchesUpByDeltaOnly) {
  const PqShape shape{2, 3};
  RemoveStore("repl_follower_kill.db");
  LeaderService leader("repl_leader_kill.db", shape);
  FollowerHarness first(leader.connect_point, "repl_follower_kill.db");
  ASSERT_TRUE(first.follower->Start().ok());

  std::unique_ptr<Client> writer = leader.MustConnect();
  Rng rng(43);
  auto dict = std::make_shared<LabelDict>();
  ForestIndex library(shape);
  std::vector<Tree> trees;
  for (TreeId id = 0; id < 10; ++id) {
    trees.push_back(GenerateDblpLike(dict, &rng, 40));
    ASSERT_TRUE(writer->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }
  MustConverge(leader.server.get(), first.follower.get());
  const uint64_t cursor_at_kill = first.follower->cursor();
  ASSERT_GT(cursor_at_kill, 0u);

  // Kill the follower while the leader keeps committing: the stream
  // dies mid-flight, the store keeps its durable cursor.
  std::thread pump([&] {
    for (TreeId id = 10; id < 40; ++id) {
      Tree tree = GenerateDblpLike(dict, &rng, 40);
      ASSERT_TRUE(writer->AddTree(id, tree).ok());
      library.AddTree(id, tree);
      trees.push_back(std::move(tree));
    }
  });
  first.follower->Stop();
  pump.join();

  // A new follower over the same store resumes from the durable cursor
  // and catches up with deltas only -- no snapshot, no refetch of what
  // it already had.
  FollowerHarness second(leader.connect_point, "repl_follower_kill.db");
  ASSERT_TRUE(second.follower->Start().ok());
  MustConverge(leader.server.get(), second.follower.get());
  EXPECT_EQ(second.follower->snapshot_resyncs(), 0);
  EXPECT_GE(second.follower->cursor(), cursor_at_kill);

  std::unique_ptr<Client> reader = second.MustConnect();
  for (TreeId id = 0; id < 40; id += 7) {
    ExpectIdenticalLookups(writer.get(), reader.get(), library,
                           trees[static_cast<size_t>(id)], 0.5);
  }
  second.follower->Stop();
  leader.server->Stop();
}

TEST(ReplicationFollowerTest, SnapshotFallbackWhenHistoryCompacted) {
  const PqShape shape{2, 3};
  ServerOptions options;
  options.replication_history = 4;
  LeaderService leader("repl_leader_hist.db", shape, options);
  RemoveStore("repl_follower_hist.db");
  FollowerHarness first(leader.connect_point, "repl_follower_hist.db");
  ASSERT_TRUE(first.follower->Start().ok());

  std::unique_ptr<Client> writer = leader.MustConnect();
  Rng rng(44);
  auto dict = std::make_shared<LabelDict>();
  ForestIndex library(shape);
  std::vector<Tree> trees;
  for (TreeId id = 0; id < 5; ++id) {
    trees.push_back(GenerateDblpLike(dict, &rng, 40));
    ASSERT_TRUE(writer->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }
  MustConverge(leader.server.get(), first.follower.get());
  first.follower->Stop();

  // Far more commits than the history window retains: the stopped
  // follower's cursor falls out of the window.
  for (TreeId id = 5; id < 30; ++id) {
    trees.push_back(GenerateDblpLike(dict, &rng, 40));
    ASSERT_TRUE(writer->AddTree(id, trees.back()).ok());
    library.AddTree(id, trees.back());
  }

  FollowerHarness second(leader.connect_point, "repl_follower_hist.db");
  ASSERT_TRUE(second.follower->Start().ok());
  EXPECT_EQ(second.follower->snapshot_resyncs(), 1);
  MustConverge(leader.server.get(), second.follower.get());

  std::unique_ptr<Client> reader = second.MustConnect();
  for (TreeId id = 0; id < 30; id += 5) {
    ExpectIdenticalLookups(writer.get(), reader.get(), library,
                           trees[static_cast<size_t>(id)], 0.5);
  }
  second.follower->Stop();
  leader.server->Stop();
}

// --- stress (TSan target) ----------------------------------------------

TEST(ReplicationStressTest, PipelinedCommitsStreamToLiveFollower) {
  const PqShape shape{2, 3};
  ServerOptions options;
  options.commit_pipeline_depth = 3;
  options.staging_threads = 2;
  options.max_group_commit = 16;
  LeaderService leader("repl_leader_stress.db", shape, options);
  RemoveStore("repl_follower_stress.db");
  FollowerHarness standby(leader.connect_point, "repl_follower_stress.db");
  ASSERT_TRUE(standby.follower->Start().ok());

  constexpr int kWriters = 4;
  constexpr int kTreesPerWriter = 25;
  std::atomic<bool> done{false};

  // Reads race the apply thread's publishes at the streamed epoch.
  std::thread follower_reader([&] {
    std::unique_ptr<Client> reader = standby.MustConnect();
    Rng rng(1000);
    Tree probe = GenerateDblpLike(nullptr, &rng, 30);
    while (!done.load(std::memory_order_relaxed)) {
      StatusOr<std::vector<LookupResult>> results =
          reader->Lookup(probe, 0.5);
      ASSERT_TRUE(results.ok()) << results.status().ToString();
    }
  });

  std::vector<std::thread> writers;
  std::vector<std::vector<Tree>> final_trees(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::unique_ptr<Client> client = leader.MustConnect();
      Rng rng(static_cast<uint64_t>(100 + w));
      auto dict = std::make_shared<LabelDict>();
      for (int i = 0; i < kTreesPerWriter; ++i) {
        const TreeId id = static_cast<TreeId>(w * 1000 + i);
        Tree tree = GenerateDblpLike(dict, &rng, 30);
        ASSERT_TRUE(client->AddTree(id, tree).ok());
        if (i % 3 == 0) {
          EditLog log;
          GenerateEditScript(&tree, &rng, 5, EditScriptOptions{}, &log);
          ASSERT_TRUE(client->ApplyEdits(id, tree, log).ok());
        }
        final_trees[static_cast<size_t>(w)].push_back(std::move(tree));
      }
    });
  }
  for (std::thread& thread : writers) thread.join();
  done.store(true, std::memory_order_relaxed);
  follower_reader.join();

  MustConverge(leader.server.get(), standby.follower.get());
  EXPECT_TRUE(standby.follower->stream_status().ok());

  // Leader and follower answer bit-identically after the storm.
  std::unique_ptr<Client> at_leader = leader.MustConnect();
  std::unique_ptr<Client> at_follower = standby.MustConnect();
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kTreesPerWriter; i += 6) {
      const Tree& query = final_trees[static_cast<size_t>(w)]
                                     [static_cast<size_t>(i)];
      StatusOr<std::vector<LookupResult>> a = at_leader->Lookup(query, 0.5);
      StatusOr<std::vector<LookupResult>> b =
          at_follower->Lookup(query, 0.5);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      ASSERT_EQ(a->size(), b->size());
      for (size_t k = 0; k < a->size(); ++k) {
        EXPECT_EQ((*a)[k].tree_id, (*b)[k].tree_id);
        EXPECT_EQ((*a)[k].distance, (*b)[k].distance);
      }
    }
  }

  standby.follower->Stop();
  leader.server->Stop();
}

}  // namespace
}  // namespace pqidx
