// Randomized stress tests ("mini fuzzers") kept in the regular suite at a
// budget that runs in seconds. The large-scale variants of these loops
// found the two formal counterexamples documented in DESIGN.md.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "edit/log_optimizer.h"
#include "storage/index_store.h"
#include "storage/tree_store.h"
#include "test_util.h"
#include "tree/generators.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace pqidx {
namespace {

// The headline invariant under heavy randomization: incremental update
// equals rebuild, for every shape, across many tree/script combinations.
class IncrementalFuzz : public ::testing::TestWithParam<PqShape> {};

TEST_P(IncrementalFuzz, UpdateEqualsRebuild) {
  const PqShape shape = GetParam();
  Rng rng(0xF00D + shape.p * 1000 + shape.q);
  for (int trial = 0; trial < 120; ++trial) {
    int nodes = 1 + static_cast<int>(rng.NextBounded(40));
    int ops = 1 + static_cast<int>(rng.NextBounded(30));
    EditScriptOptions options;
    options.insert_weight = 0.5 + rng.NextDouble() * 2.0;
    options.delete_weight = 0.5 + rng.NextDouble() * 2.0;
    options.rename_weight = 0.5 + rng.NextDouble() * 2.0;
    options.reuse_label_probability = rng.NextDouble();
    options.max_adopted_children = 1 + static_cast<int>(rng.NextBounded(6));

    Tree t0 = GenerateRandomTree(
        nullptr, &rng,
        {.num_nodes = nodes,
         .alphabet_size = 2 + static_cast<int>(rng.NextBounded(6))});
    Tree tn = t0.Clone();
    EditLog log;
    GenerateEditScript(&tn, &rng, ops, options, &log);

    PqGramIndex index = BuildIndex(t0, shape);
    ASSERT_TRUE(UpdateIndex(&index, tn, log).ok());
    ASSERT_EQ(index, BuildIndex(tn, shape))
        << "trial " << trial << " nodes " << nodes << " ops " << ops;
  }
}

TEST_P(IncrementalFuzz, OptimizedLogsEquivalent) {
  const PqShape shape = GetParam();
  Rng rng(0xBEEF + shape.p * 1000 + shape.q);
  for (int trial = 0; trial < 40; ++trial) {
    Tree t0 = GenerateRandomTree(
        nullptr, &rng, {.num_nodes = 20, .alphabet_size = 3});
    Tree tn = t0.Clone();
    EditLog log;
    EditScriptOptions options;
    options.reuse_label_probability = 1.0;
    GenerateEditScript(&tn, &rng, 25, options, &log);
    EditLog optimized = OptimizeLog(&tn, log);

    PqGramIndex a = BuildIndex(t0, shape);
    PqGramIndex b = a;
    ASSERT_TRUE(UpdateIndex(&a, tn, log).ok());
    ASSERT_TRUE(UpdateIndex(&b, tn, optimized).ok());
    ASSERT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IncrementalFuzz,
    ::testing::Values(PqShape{1, 1}, PqShape{1, 2}, PqShape{2, 2},
                      PqShape{3, 3}),
    [](const ::testing::TestParamInfo<PqShape>& info) {
      return "p" + std::to_string(info.param.p) + "q" +
             std::to_string(info.param.q);
    });

// Deserializers must reject random mutations of valid files with an
// error -- never crash and never silently accept corrupted data that
// breaks invariants.
TEST(CorruptionFuzz, ForestIndexLoaderNeverCrashes) {
  Rng rng(1);
  ForestIndex forest(PqShape{3, 3});
  auto dict = std::make_shared<LabelDict>();
  for (TreeId id = 0; id < 4; ++id) {
    forest.AddTree(id, GenerateDblpLike(dict, &rng, 10));
  }
  std::string path = ::testing::TempDir() + "/fuzz_forest.idx";
  ASSERT_TRUE(SaveForestIndex(forest, path).ok());
  std::string original;
  ASSERT_TRUE(ReadFile(path, &original).ok());

  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = original;
    switch (rng.NextBounded(3)) {
      case 0:  // flip a byte
        mutated[rng.NextBounded(mutated.size())] ^=
            static_cast<char>(1 + rng.NextBounded(255));
        break;
      case 1:  // truncate
        mutated.resize(rng.NextBounded(mutated.size()));
        break;
      default:  // append garbage
        mutated += std::string(1 + rng.NextBounded(16), '\x5a');
        break;
    }
    StatusOr<ForestIndex> loaded = LoadForestIndex(path + ".tmp");
    (void)loaded;  // missing file: must just error
    ASSERT_TRUE(WriteFile(path + ".mut", mutated).ok());
    StatusOr<ForestIndex> result = LoadForestIndex(path + ".mut");
    if (result.ok()) {
      // Loaded despite mutation (e.g. a count byte changed): invariants
      // must still hold well enough to answer queries without crashing.
      result->Lookup(*forest.Find(0), 1.0);
    }
  }
}

TEST(CorruptionFuzz, TreeLoaderNeverCrashes) {
  Rng rng(2);
  Tree tree = GenerateXmarkLike(nullptr, &rng, 100);
  std::string path = ::testing::TempDir() + "/fuzz_tree.bin";
  ASSERT_TRUE(SaveTree(tree, path).ok());
  std::string original;
  ASSERT_TRUE(ReadFile(path, &original).ok());
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = original;
    if (rng.Bernoulli(0.5)) {
      mutated[rng.NextBounded(mutated.size())] ^=
          static_cast<char>(1 + rng.NextBounded(255));
    } else {
      mutated.resize(rng.NextBounded(mutated.size()));
    }
    ASSERT_TRUE(WriteFile(path + ".mut", mutated).ok());
    StatusOr<Tree> loaded = LoadTree(path + ".mut");
    if (loaded.ok()) {
      loaded->CheckConsistency();  // accepted data must be a valid tree
    }
  }
}

TEST(CorruptionFuzz, XmlParserNeverCrashesOnMutations) {
  Rng rng(3);
  Tree doc = GenerateXmarkLike(nullptr, &rng, 60);
  std::string xml = WriteXml(doc);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = xml;
    int edits = 1 + static_cast<int>(rng.NextBounded(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.NextBounded(mutated.size());
      switch (rng.NextBounded(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextBounded(256));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.NextBounded(5));
          break;
        default:
          mutated.insert(pos, 1, "<>&\"'"[rng.NextBounded(5)]);
          break;
      }
      if (mutated.empty()) break;
    }
    StatusOr<Tree> parsed = ParseXml(mutated);
    if (parsed.ok()) {
      parsed->CheckConsistency();
    }
  }
}

}  // namespace
}  // namespace pqidx
