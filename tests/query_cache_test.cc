// Tests for the epoch-keyed query-result cache: Put/Get/eviction/
// reclamation semantics on the cache itself, the epoch protocol through
// LookupEngine (incremental publishes keep untouched shards warm, full
// rebuilds go cold wholesale), bit-identity of cached answers, and a
// threaded hammer racing lookups against snapshot swaps (TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/lookup_engine.h"
#include "core/query_cache.h"
#include "edit/edit_script.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

constexpr double kTaus[] = {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0, 1.5};

void ExpectSameResults(const std::vector<LookupResult>& got,
                       const std::vector<LookupResult>& want,
                       const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].tree_id, want[i].tree_id) << what << " position " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << what << " position " << i;
  }
}

std::vector<LookupResult> MakeResults(int n, int base) {
  std::vector<LookupResult> results;
  for (int i = 0; i < n; ++i) {
    results.push_back(LookupResult{base + i, 0.25 * i});
  }
  return results;
}

TEST(QueryCacheTest, PutGetRoundTripAndMisses) {
  QueryCache cache(QueryCache::Options{});
  const QueryFingerprint a{0x1111, 0x2222};
  const QueryFingerprint b{0x3333, 0x4444};
  const std::vector<LookupResult> want = MakeResults(3, 10);

  std::vector<LookupResult> out;
  EXPECT_FALSE(cache.Get(a, 7, &out));
  EXPECT_EQ(cache.misses(), 1);

  cache.Put(a, 7, want);
  EXPECT_EQ(cache.entries(), 1);
  ASSERT_TRUE(cache.Get(a, 7, &out));
  ExpectSameResults(out, want, "round trip");
  EXPECT_EQ(cache.hits(), 1);

  // Same fingerprint under a different shard uid, and a different
  // fingerprint under the same uid, are both distinct keys.
  out.clear();
  EXPECT_FALSE(cache.Get(a, 8, &out));
  EXPECT_FALSE(cache.Get(b, 7, &out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cache.misses(), 3);

  // Re-inserting an existing key keeps the original entry.
  cache.Put(a, 7, MakeResults(5, 99));
  EXPECT_EQ(cache.entries(), 1);
  ASSERT_TRUE(cache.Get(a, 7, &out));
  ExpectSameResults(out, want, "after duplicate put");
}

TEST(QueryCacheTest, EvictionRespectsByteBudget) {
  // 16 internal shards; a 64 KiB budget leaves room for a handful of
  // entries per shard, so a few hundred inserts must evict.
  QueryCache::Options options;
  options.max_bytes = size_t{64} << 10;
  QueryCache cache(options);

  Rng rng(11);
  QueryFingerprint last{};
  for (int i = 0; i < 400; ++i) {
    const QueryFingerprint fp{rng.Next(), rng.Next()};
    cache.Put(fp, 1, MakeResults(8, i));
    last = fp;
  }
  EXPECT_GT(cache.evictions(), 0);
  EXPECT_LE(static_cast<size_t>(cache.bytes()), options.max_bytes);
  EXPECT_GT(cache.entries(), 0);
  EXPECT_LT(cache.entries(), 400);

  // The most recent insert is the most recent entry of its internal
  // shard, so LRU eviction cannot have removed it.
  std::vector<LookupResult> out;
  EXPECT_TRUE(cache.Get(last, 1, &out));
}

TEST(QueryCacheTest, OnPublishReclaimsDeadUids) {
  QueryCache cache(QueryCache::Options{});
  const QueryFingerprint fp{0xabc, 0xdef};
  for (uint64_t uid = 1; uid <= 4; ++uid) {
    cache.Put(fp, uid, MakeResults(2, static_cast<int>(uid)));
  }
  EXPECT_EQ(cache.entries(), 4);

  cache.OnPublish({2, 4});
  EXPECT_EQ(cache.stale(), 2);
  EXPECT_EQ(cache.entries(), 2);
  std::vector<LookupResult> out;
  EXPECT_FALSE(cache.Get(fp, 1, &out));
  EXPECT_FALSE(cache.Get(fp, 3, &out));
  EXPECT_TRUE(cache.Get(fp, 2, &out));
  EXPECT_TRUE(cache.Get(fp, 4, &out));

  // A full rebuild's all-new uid set empties the cache wholesale.
  cache.OnPublish({100, 101});
  EXPECT_EQ(cache.stale(), 4);
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.bytes(), 0);
}

TEST(QueryCacheTest, ClearDropsEverythingAsStale) {
  QueryCache cache(QueryCache::Options{});
  const QueryFingerprint fp{1, 2};
  cache.Put(fp, 1, MakeResults(1, 0));
  cache.Put(fp, 2, MakeResults(1, 1));
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.bytes(), 0);
  EXPECT_EQ(cache.stale(), 2);
  std::vector<LookupResult> out;
  EXPECT_FALSE(cache.Get(fp, 1, &out));
}

// One forest + engine + cache fixture for the epoch-protocol tests.
struct EpochFixture {
  static constexpr int kShards = 4;

  EpochFixture() : forest(PqShape{2, 3}), cache(QueryCache::Options{}) {
    Rng rng(29);
    dict = std::make_shared<LabelDict>();
    for (TreeId id = 0; id < 30; ++id) {
      docs.push_back(GenerateDblpLike(dict, &rng, 60));
      forest.AddTree(id, docs.back());
    }
    engine = LookupEngine::Build(forest, kShards);
    query = BuildIndex(GenerateDblpLike(dict, &rng, 60), PqShape{2, 3});
  }

  ForestIndex forest;
  std::shared_ptr<LabelDict> dict;
  std::vector<Tree> docs;
  std::shared_ptr<const LookupEngine> engine;
  PqGramIndex query;
  QueryCache cache;
};

TEST(QueryCacheEpochTest, WarmLookupsHitAndStayBitIdentical) {
  EpochFixture fx;
  for (double tau : kTaus) {
    const std::vector<LookupResult> want = fx.forest.Lookup(fx.query, tau);
    const int64_t hits_before = fx.cache.hits();
    const int64_t misses_before = fx.cache.misses();
    ExpectSameResults(
        fx.engine->Lookup(fx.query, tau, nullptr, nullptr, &fx.cache), want,
        "cold");
    EXPECT_EQ(fx.cache.misses() - misses_before, EpochFixture::kShards);
    ExpectSameResults(
        fx.engine->Lookup(fx.query, tau, nullptr, nullptr, &fx.cache), want,
        "warm");
    EXPECT_EQ(fx.cache.hits() - hits_before, EpochFixture::kShards);
  }
}

TEST(QueryCacheEpochTest, TopKCachedMatchesForest) {
  EpochFixture fx;
  for (int k : {1, 3, 10, 50}) {
    const std::vector<LookupResult> want = fx.forest.TopK(fx.query, k);
    ExpectSameResults(
        fx.engine->TopK(fx.query, k, nullptr, nullptr, &fx.cache), want,
        "cold topk");
    const int64_t hits_before = fx.cache.hits();
    ExpectSameResults(
        fx.engine->TopK(fx.query, k, nullptr, nullptr, &fx.cache), want,
        "warm topk");
    EXPECT_EQ(fx.cache.hits() - hits_before, EpochFixture::kShards);
  }
}

TEST(QueryCacheEpochTest, HostileTauAndNonPositiveKBypassCache) {
  EpochFixture fx;
  const double hostile[] = {-0.5, -1e308,
                            -std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::quiet_NaN()};
  for (double tau : hostile) {
    EXPECT_TRUE(
        fx.engine->Lookup(fx.query, tau, nullptr, nullptr, &fx.cache)
            .empty());
  }
  EXPECT_TRUE(
      fx.engine->TopK(fx.query, 0, nullptr, nullptr, &fx.cache).empty());
  EXPECT_TRUE(
      fx.engine->TopK(fx.query, -3, nullptr, nullptr, &fx.cache).empty());
  EXPECT_EQ(fx.cache.hits(), 0);
  EXPECT_EQ(fx.cache.misses(), 0);
  EXPECT_EQ(fx.cache.entries(), 0);
}

TEST(QueryCacheEpochTest, IncrementalPublishKeepsUntouchedShardsWarm) {
  EpochFixture fx;
  // Warm every shard for one (query, tau) key.
  const double tau = 0.8;
  fx.engine->Lookup(fx.query, tau, nullptr, nullptr, &fx.cache);
  ASSERT_EQ(fx.cache.entries(), EpochFixture::kShards);

  // Edit one tree; ApplyDelta recompiles only its shard and shares the
  // rest, which the uid sets make directly observable.
  Rng rng(31);
  EditLog log;
  GenerateEditScript(&fx.docs[5], &rng, 8, EditScriptOptions{}, &log);
  ASSERT_TRUE(fx.forest.ApplyLog(5, fx.docs[5], log).ok());
  auto next = LookupEngine::ApplyDelta(fx.engine, fx.forest, {5});

  const std::vector<uint64_t> old_uids = fx.engine->ShardUids();
  const std::vector<uint64_t> new_uids = next->ShardUids();
  ASSERT_EQ(new_uids.size(), old_uids.size());
  int64_t shared = 0;
  for (uint64_t uid : new_uids) {
    for (uint64_t old : old_uids) shared += uid == old ? 1 : 0;
  }
  ASSERT_GT(shared, 0);
  ASSERT_LT(shared, EpochFixture::kShards);

  fx.cache.OnPublish(new_uids);
  EXPECT_EQ(fx.cache.stale(), EpochFixture::kShards - shared);
  EXPECT_EQ(fx.cache.entries(), shared);

  // The same query against the new snapshot hits the shared shards,
  // misses exactly the recompiled ones, and stays bit-identical.
  const int64_t hits_before = fx.cache.hits();
  const int64_t misses_before = fx.cache.misses();
  ExpectSameResults(next->Lookup(fx.query, tau, nullptr, nullptr, &fx.cache),
                    fx.forest.Lookup(fx.query, tau), "incremental warm");
  EXPECT_EQ(fx.cache.hits() - hits_before, shared);
  EXPECT_EQ(fx.cache.misses() - misses_before,
            EpochFixture::kShards - shared);

  // A full rebuild mints all-new uids: publishing its uid set empties
  // the cache wholesale and the next lookup misses on every shard.
  auto rebuilt = LookupEngine::Build(fx.forest, EpochFixture::kShards);
  for (uint64_t uid : rebuilt->ShardUids()) {
    for (uint64_t old : new_uids) EXPECT_NE(uid, old);
  }
  fx.cache.OnPublish(rebuilt->ShardUids());
  EXPECT_EQ(fx.cache.entries(), 0);
  const int64_t misses_cold = fx.cache.misses();
  ExpectSameResults(
      rebuilt->Lookup(fx.query, tau, nullptr, nullptr, &fx.cache),
      fx.forest.Lookup(fx.query, tau), "post rebuild");
  EXPECT_EQ(fx.cache.misses() - misses_cold, EpochFixture::kShards);
}

// An ephemeral apply-then-revert burst recompiles the touched shard
// twice. The reverted snapshot's content is bit-identical to the
// pre-burst snapshot, but the recompiled shard carries a fresh uid --
// so the cache must miss there (it can never resurrect the pre-burst
// entry for content that was rebuilt) while every untouched shard stays
// warm and answers remain bit-identical throughout.
TEST(QueryCacheEpochTest, RevertedBurstNeverServesStaleHits) {
  EpochFixture fx;
  const double tau = 0.8;
  const std::vector<LookupResult> pre =
      fx.engine->Lookup(fx.query, tau, nullptr, nullptr, &fx.cache);
  ASSERT_EQ(fx.cache.entries(), EpochFixture::kShards);

  // Burst: edit one tree's bag and publish, then restore the original
  // bag and publish again -- the workload driver's ephemeral burst in
  // miniature (two incremental publishes, net content change zero).
  const TreeId victim = 5;
  const PqGramIndex original = *fx.forest.Find(victim);
  PqGramIndex edited = original;
  edited.Add(static_cast<PqGramFingerprint>(0xdeadbeefcafef00d), 3);
  fx.forest.AddIndex(victim, edited);
  auto mid = LookupEngine::ApplyDelta(fx.engine, fx.forest, {victim});
  fx.cache.OnPublish(mid->ShardUids());
  // Publishing the mid epoch reclaims exactly the touched shard's entry.
  EXPECT_EQ(fx.cache.stale(), 1);
  EXPECT_EQ(fx.cache.entries(), EpochFixture::kShards - 1);

  fx.forest.AddIndex(victim, original);
  auto post = LookupEngine::ApplyDelta(mid, fx.forest, {victim});
  fx.cache.OnPublish(post->ShardUids());

  // Content restored exactly...
  EXPECT_EQ(*fx.forest.Find(victim), original);
  EXPECT_EQ(post->size(), fx.engine->size());
  EXPECT_EQ(post->posting_entries(), fx.engine->posting_entries());

  // ...behind a fresh uid on the recompiled shard: the next lookup
  // hits every shared shard and misses exactly the rebuilt one. A
  // stale hit would show up as kShards hits here (or as a result
  // mismatch if the pre-burst entry had diverged).
  int64_t hits_before = fx.cache.hits();
  const int64_t misses_before = fx.cache.misses();
  ExpectSameResults(post->Lookup(fx.query, tau, nullptr, nullptr, &fx.cache),
                    pre, "post-revert cold");
  EXPECT_EQ(fx.cache.hits() - hits_before, EpochFixture::kShards - 1);
  EXPECT_EQ(fx.cache.misses() - misses_before, 1);

  // The miss repopulated the fresh uid's entry: fully warm now.
  hits_before = fx.cache.hits();
  ExpectSameResults(post->Lookup(fx.query, tau, nullptr, nullptr, &fx.cache),
                    pre, "post-revert warm");
  EXPECT_EQ(fx.cache.hits() - hits_before, EpochFixture::kShards);
}

// Readers hammer cache-enabled lookups (sequential and pooled) while a
// writer edits trees, publishes ApplyDelta snapshots, and reclaims dead
// uids -- the server's publish path in miniature. TSan'd in CI.
TEST(QueryCacheStressTest, CachedLookupsRaceSnapshotSwaps) {
  const PqShape shape{2, 3};
  ForestIndex forest(shape);
  Rng rng(67);
  auto dict = std::make_shared<LabelDict>();
  std::vector<Tree> docs;
  for (TreeId id = 0; id < 16; ++id) {
    docs.push_back(GenerateDblpLike(dict, &rng, 50));
    forest.AddTree(id, docs.back());
  }

  QueryCache cache(QueryCache::Options{});
  std::mutex engine_mutex;
  std::shared_ptr<const LookupEngine> engine = LookupEngine::Build(forest, 4);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> lookups_done{0};
  ThreadPool pool(2);

  std::thread writer([&] {
    Rng wrng(71);
    auto current = engine;
    for (int round = 0; round < 40; ++round) {
      const TreeId id = static_cast<TreeId>(wrng.NextBounded(docs.size()));
      EditLog log;
      GenerateEditScript(&docs[id], &wrng, 6, EditScriptOptions{}, &log);
      ASSERT_TRUE(forest.ApplyLog(id, docs[id], log).ok());
      current = LookupEngine::ApplyDelta(current, forest, {id});
      {
        std::lock_guard<std::mutex> lock(engine_mutex);
        engine = current;
      }
      cache.OnPublish(current->ShardUids());
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rrng(300 + r);
      auto query_doc = GenerateDblpLike(nullptr, &rrng, 50);
      PqGramIndex query = BuildIndex(query_doc, shape);
      while (!stop.load()) {
        std::shared_ptr<const LookupEngine> snapshot;
        {
          std::lock_guard<std::mutex> lock(engine_mutex);
          snapshot = engine;
        }
        ThreadPool* maybe_pool = r % 2 == 0 ? &pool : nullptr;
        std::vector<LookupResult> hits =
            snapshot->Lookup(query, 0.9, maybe_pool, nullptr, &cache);
        for (size_t i = 1; i < hits.size(); ++i) {
          ASSERT_TRUE(hits[i - 1].distance < hits[i].distance ||
                      (hits[i - 1].distance == hits[i].distance &&
                       hits[i - 1].tree_id < hits[i].tree_id));
        }
        std::vector<LookupResult> top =
            snapshot->TopK(query, 5, maybe_pool, nullptr, &cache);
        ASSERT_LE(top.size(), 5u);
        lookups_done.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(lookups_done.load(), 0);

  // The cache survived 40 publishes; the final snapshot still answers
  // bit-identically through it, cold and warm.
  PqGramIndex final_query = BuildIndex(docs[0], shape);
  for (double tau : kTaus) {
    const std::vector<LookupResult> want = forest.Lookup(final_query, tau);
    ExpectSameResults(
        engine->Lookup(final_query, tau, nullptr, nullptr, &cache), want,
        "post-hammer cold");
    ExpectSameResults(
        engine->Lookup(final_query, tau, nullptr, nullptr, &cache), want,
        "post-hammer warm");
  }
}

}  // namespace
}  // namespace pqidx
