// End-to-end integration tests: XML documents -> forest index ->
// approximate lookup -> logged edits -> incremental maintenance ->
// persistence, crossing every module boundary the way the paper's
// application scenario (Figure 1) does.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/random.h"
#include "core/distance.h"
#include "core/forest_index.h"
#include "core/incremental.h"
#include "edit/edit_script.h"
#include "edit/log_optimizer.h"
#include "storage/index_store.h"
#include "storage/tree_store.h"
#include "tree/generators.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace pqidx {
namespace {

TEST(IntegrationTest, XmlCorpusLifecycle) {
  Rng rng(2026);
  const PqShape shape{3, 3};
  auto dict = std::make_shared<LabelDict>();

  // 1. Generate a small corpus, serialize to XML, re-parse (simulating
  //    ingest from documents on disk), and index it.
  ForestIndex forest(shape);
  std::vector<Tree> documents;
  for (int i = 0; i < 8; ++i) {
    Tree generated = GenerateXmarkLike(dict, &rng, 250);
    std::string xml = WriteXml(generated);
    StatusOr<Tree> parsed = ParseXml(xml, dict);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    forest.AddTree(i, *parsed);
    documents.push_back(std::move(parsed).value());
  }

  // 2. A lookup of document 3 finds itself at distance 0.
  std::vector<LookupResult> hits = forest.Lookup(documents[3], 0.5);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].tree_id, 3);
  EXPECT_DOUBLE_EQ(hits[0].distance, 0.0);

  // 3. Document 3 evolves; its index is maintained from the log only.
  EditLog log;
  GenerateEditScript(&documents[3], &rng, 25, EditScriptOptions{}, &log);
  ASSERT_TRUE(forest.ApplyLog(3, documents[3], log).ok());
  EXPECT_EQ(*forest.Find(3), BuildIndex(documents[3], shape));

  // 4. Persistence round-trip preserves everything.
  std::string path = ::testing::TempDir() + "/pqidx_integration.idx";
  ASSERT_TRUE(SaveForestIndex(forest, path).ok());
  StatusOr<ForestIndex> loaded = LoadForestIndex(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, forest);

  // 5. The reloaded index answers the same lookups.
  std::vector<LookupResult> hits2 = loaded->Lookup(documents[3], 0.5);
  ASSERT_FALSE(hits2.empty());
  EXPECT_EQ(hits2[0].tree_id, 3);
}

TEST(IntegrationTest, LongEvolutionWithPeriodicVerification) {
  // One document, many update rounds; the incrementally maintained index
  // must track the rebuilt index at every checkpoint.
  Rng rng(7);
  const PqShape shape{2, 3};
  Tree doc = GenerateDblpLike(nullptr, &rng, 60);
  PqGramIndex index = BuildIndex(doc, shape);
  for (int round = 0; round < 12; ++round) {
    EditLog log;
    GenerateEditScript(&doc, &rng, 15, EditScriptOptions{}, &log);
    ASSERT_TRUE(UpdateIndex(&index, doc, log).ok());
    ASSERT_EQ(index, BuildIndex(doc, shape)) << "round " << round;
  }
}

TEST(IntegrationTest, OptimizedLogsAcrossRounds) {
  Rng rng(8);
  const PqShape shape{3, 3};
  Tree doc = GenerateXmarkLike(nullptr, &rng, 300);
  PqGramIndex index = BuildIndex(doc, shape);
  EditScriptOptions options;
  options.reuse_label_probability = 1.0;
  for (int round = 0; round < 6; ++round) {
    EditLog log;
    GenerateEditScript(&doc, &rng, 40, options, &log);
    EditLog optimized = OptimizeLog(doc, log);
    ASSERT_TRUE(UpdateIndex(&index, doc, optimized).ok());
    ASSERT_EQ(index, BuildIndex(doc, shape)) << "round " << round;
  }
}

TEST(IntegrationTest, DistanceConsistentAcrossMaintenancePaths) {
  // dist(T, T') computed from incrementally maintained indexes equals the
  // distance from freshly built ones.
  Rng rng(9);
  const PqShape shape{3, 3};
  auto dict = std::make_shared<LabelDict>();
  Tree a = GenerateXmarkLike(dict, &rng, 200);
  Tree b = a.Clone();
  PqGramIndex ia = BuildIndex(a, shape);
  PqGramIndex ib = ia;  // identical twin to start

  EditLog log;
  GenerateEditScript(&b, &rng, 12, EditScriptOptions{}, &log);
  ASSERT_TRUE(UpdateIndex(&ib, b, log).ok());

  double incremental_dist = PqGramDistance(ia, ib);
  double rebuilt_dist = PqGramDistance(a, b, shape);
  EXPECT_DOUBLE_EQ(incremental_dist, rebuilt_dist);
  EXPECT_GT(incremental_dist, 0.0);
  EXPECT_LT(incremental_dist, 0.5);  // 12 edits on 200 nodes stay similar
}

TEST(IntegrationTest, TreePersistenceFeedsIndexPipeline) {
  Rng rng(10);
  const PqShape shape{3, 3};
  Tree doc = GenerateDblpLike(nullptr, &rng, 40);
  std::string path = ::testing::TempDir() + "/pqidx_integration_tree.bin";
  ASSERT_TRUE(SaveTree(doc, path).ok());
  StatusOr<Tree> loaded = LoadTree(path);
  ASSERT_TRUE(loaded.ok());
  // Indexes built from the original and the round-tripped tree agree.
  EXPECT_EQ(BuildIndex(doc, shape), BuildIndex(*loaded, shape));
}

}  // namespace
}  // namespace pqidx
