// Golden-byte tests: lock the serialized formats. If one of these fails,
// either bump the format version (and keep reading the old one) or revert
// the accidental change -- silently breaking existing files is not an
// option for a persistent index.

#include <gtest/gtest.h>

#include <string>

#include "common/fingerprint.h"
#include "common/serde.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "storage/tree_store.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

std::string ToHex(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    hex.push_back(kDigits[c >> 4]);
    hex.push_back(kDigits[c & 0xf]);
  }
  return hex;
}

// The paper's example tree under the default 3,3 shape, stored as tree id
// 7. Pinned bytes were produced by this library and must never change
// within format version 1.
TEST(GoldenFormatTest, ForestIndexBytes) {
  Tree tree = ParseTreeNotation("a(b,c(e,f),d)").value();
  ForestIndex forest(PqShape{3, 3});
  forest.AddTree(7, tree);
  ByteWriter writer;
  forest.Serialize(&writer);
  EXPECT_EQ(
      ToHex(writer.data()),
      "0303010703030d03a8302ea16e1c100124593c4b94483514019fc3c29bf1627e31"
      "017f98fcaf829d1843017245df7f06e1df4301396cc5e6351ab58001f87f745b5c"
      "09408701d320116c8e51998c01fb3bf7f05b795aa7013e9463fff5a595bd01c6ed"
      "ddb0dbb375d40126a17e596fceafd701a95b0840cf6d92d801");
}

TEST(GoldenFormatTest, TreeBytes) {
  Tree tree = ParseTreeNotation("a(b,c(e,f),d)").value();
  ByteWriter writer;
  SerializeTree(tree, &writer);
  EXPECT_EQ(ToHex(writer.data()),
            "0601610162016301650166016406010302000302040005000600");
}

TEST(GoldenFormatTest, KarpRabinValuesStable) {
  // The label fingerprint function feeds every persisted fingerprint;
  // pin a few values.
  EXPECT_EQ(KarpRabinFingerprint(""), 2ull);
  EXPECT_EQ(KarpRabinFingerprint("a"), 51ull);
  EXPECT_EQ(KarpRabinFingerprint("article"),
            KarpRabinFingerprint(std::string("article")));
}

TEST(GoldenFormatTest, SerializationIsDeterministic) {
  // Equal bags serialize identically regardless of construction order.
  PqGramIndex forward(PqShape{2, 2});
  PqGramIndex backward(PqShape{2, 2});
  for (int i = 0; i < 200; ++i) {
    forward.Add(static_cast<PqGramFingerprint>(i * 977 + 13), i % 5 + 1);
  }
  for (int i = 199; i >= 0; --i) {
    backward.Add(static_cast<PqGramFingerprint>(i * 977 + 13), i % 5 + 1);
  }
  ByteWriter w1, w2;
  forward.Serialize(&w1);
  backward.Serialize(&w2);
  EXPECT_EQ(w1.data(), w2.data());
}

}  // namespace
}  // namespace pqidx
