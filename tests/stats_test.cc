// Tests for tree statistics.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/profile.h"
#include "test_util.h"
#include "tree/generators.h"
#include "tree/stats.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

TEST(TreeStatsTest, SmallTreeByHand) {
  Tree tree = MustParse("a(b,c(e,f),d)");
  TreeStats stats = ComputeTreeStats(tree);
  EXPECT_EQ(stats.nodes, 6);
  EXPECT_EQ(stats.leaves, 4);
  EXPECT_EQ(stats.internal, 2);
  EXPECT_EQ(stats.depth, 2);
  EXPECT_EQ(stats.max_fanout, 3);
  EXPECT_DOUBLE_EQ(stats.avg_fanout, 2.5);  // (3 + 2) / 2
  EXPECT_DOUBLE_EQ(stats.avg_depth, (0 + 1 + 1 + 1 + 2 + 2) / 6.0);
  EXPECT_EQ(stats.distinct_labels, 6);
  EXPECT_EQ(stats.fanout_histogram.at(0), 4);
  EXPECT_EQ(stats.fanout_histogram.at(2), 1);
  EXPECT_EQ(stats.fanout_histogram.at(3), 1);
  EXPECT_EQ(stats.depth_histogram.at(1), 3);
}

TEST(TreeStatsTest, SingleNode) {
  Tree tree = MustParse("only");
  TreeStats stats = ComputeTreeStats(tree);
  EXPECT_EQ(stats.nodes, 1);
  EXPECT_EQ(stats.leaves, 1);
  EXPECT_EQ(stats.internal, 0);
  EXPECT_EQ(stats.depth, 0);
  EXPECT_DOUBLE_EQ(stats.avg_fanout, 0.0);
}

TEST(TreeStatsTest, TopLabelsRankedByFrequency) {
  Tree tree = MustParse("r(a,a,a,b,b,c)");
  TreeStats stats = ComputeTreeStats(tree, /*top_k=*/2);
  ASSERT_EQ(stats.top_labels.size(), 2u);
  EXPECT_EQ(stats.top_labels[0].first, "a");
  EXPECT_EQ(stats.top_labels[0].second, 3);
  EXPECT_EQ(stats.top_labels[1].first, "b");
  EXPECT_EQ(stats.top_labels[1].second, 2);
}

TEST(TreeStatsTest, ProfileSizeFromStatsMatchesDirectComputation) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Tree tree = GenerateRandomTree(
        nullptr, &rng,
        {.num_nodes = 1 + static_cast<int>(rng.NextBounded(80))});
    TreeStats stats = ComputeTreeStats(tree);
    for (const PqShape& shape : pqidx::testing::AllTestShapes()) {
      EXPECT_EQ(ProfileSizeFromStats(stats, shape),
                ProfileSize(tree, shape));
    }
  }
}

TEST(TreeStatsTest, GeneratorsHaveExpectedSignatures) {
  Rng rng(2);
  // DBLP-like: flat and wide.
  TreeStats dblp = ComputeTreeStats(GenerateDblpLike(nullptr, &rng, 500));
  EXPECT_LE(dblp.depth, 3);
  EXPECT_EQ(dblp.max_fanout, 500);
  // XMark-like: deeper, bounded fanout.
  TreeStats xmark =
      ComputeTreeStats(GenerateXmarkLike(nullptr, &rng, 3000));
  EXPECT_GE(xmark.depth, 4);
  EXPECT_LT(xmark.max_fanout, 3000);
}

TEST(TreeStatsTest, ToStringMentionsKeyNumbers) {
  Tree tree = MustParse("a(b,c)");
  std::string rendered = ComputeTreeStats(tree).ToString();
  EXPECT_NE(rendered.find("nodes: 3"), std::string::npos);
  EXPECT_NE(rendered.find("max 1"), std::string::npos);  // depth
}

}  // namespace
}  // namespace pqidx
