// Direct unit tests for the (P, Q) delta store: index maintenance,
// dedup semantics, renumbering, and the join.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/delta_store.h"
#include "test_util.h"

namespace pqidx {
namespace {

PRow MakeP(NodeId anchor, NodeId parent, int sib_pos, int fanout,
           std::vector<NodeId> ids) {
  PRow row;
  row.anchor = anchor;
  row.parent = parent;
  row.sib_pos = sib_pos;
  row.fanout = fanout;
  row.ids = std::move(ids);
  row.labels.resize(row.ids.size());
  for (size_t i = 0; i < row.ids.size(); ++i) {
    row.labels[i] = row.ids[i] == kNullNodeId
                        ? kNullLabelHash
                        : static_cast<LabelHash>(row.ids[i]) * 1000;
  }
  return row;
}

QRow MakeQ(int row_idx, std::vector<NodeId> ids) {
  QRow row;
  row.row = row_idx;
  row.ids = std::move(ids);
  row.labels.resize(row.ids.size());
  for (size_t i = 0; i < row.ids.size(); ++i) {
    row.labels[i] = row.ids[i] == kNullNodeId
                        ? kNullLabelHash
                        : static_cast<LabelHash>(row.ids[i]) * 1000;
  }
  return row;
}

TEST(DeltaStoreTest, PRowInsertFindErase) {
  DeltaStore store(PqShape{2, 2});
  store.InsertPRow(MakeP(5, 3, 1, 2, {3, 5}));
  ASSERT_NE(store.FindPRow(5), nullptr);
  EXPECT_EQ(store.FindPRow(5)->parent, 3);
  EXPECT_EQ(store.p_row_count(), 1);
  // Duplicate identical insert is a no-op.
  store.InsertPRow(MakeP(5, 3, 1, 2, {3, 5}));
  EXPECT_EQ(store.p_row_count(), 1);
  store.ErasePRow(5);
  EXPECT_EQ(store.FindPRow(5), nullptr);
  store.CheckConsistency();
}

TEST(DeltaStoreTest, ConflictingPRowAborts) {
  DeltaStore store(PqShape{2, 2});
  store.InsertPRow(MakeP(5, 3, 1, 2, {3, 5}));
  EXPECT_DEATH(store.InsertPRow(MakeP(5, 3, 2, 2, {3, 5})),
               "conflicting p-row");
}

TEST(DeltaStoreTest, ChainIndexTracksContainment) {
  DeltaStore store(PqShape{3, 1});
  store.InsertPRow(MakeP(5, 3, 0, 1, {1, 3, 5}));
  store.InsertPRow(MakeP(7, 5, 0, 0, {3, 5, 7}));
  store.InsertPRow(MakeP(9, 1, 1, 0, {kNullNodeId, 1, 9}));
  auto anchors_of = [&](NodeId id) {
    auto v = store.PRowAnchorsContaining(id);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(anchors_of(5), (std::vector<NodeId>{5, 7}));
  EXPECT_EQ(anchors_of(3), (std::vector<NodeId>{5, 7}));
  EXPECT_EQ(anchors_of(1), (std::vector<NodeId>{5, 9}));
  EXPECT_TRUE(anchors_of(42).empty());
  EXPECT_TRUE(anchors_of(kNullNodeId).empty());

  // Chain replacement re-indexes.
  PRow replacement = MakeP(7, 5, 0, 0, {1, 5, 7});
  store.ReplacePRowChain(7, replacement.ids, replacement.labels);
  EXPECT_EQ(anchors_of(3), (std::vector<NodeId>{5}));
  EXPECT_EQ(anchors_of(1), (std::vector<NodeId>{5, 7, 9}));
  store.CheckConsistency();
}

TEST(DeltaStoreTest, ParentIndexAndReparenting) {
  DeltaStore store(PqShape{1, 1});
  store.InsertPRow(MakeP(2, 1, 0, 0, {2}));
  store.InsertPRow(MakeP(3, 1, 1, 0, {3}));
  auto children_of = [&](NodeId v) {
    auto c = store.ChildAnchorsOf(v);
    std::sort(c.begin(), c.end());
    return c;
  };
  EXPECT_EQ(children_of(1), (std::vector<NodeId>{2, 3}));
  store.SetPRowParentAndPos(3, 9, 0);
  EXPECT_EQ(children_of(1), (std::vector<NodeId>{2}));
  EXPECT_EQ(children_of(9), (std::vector<NodeId>{3}));
  EXPECT_EQ(store.FindPRow(3)->sib_pos, 0);
  store.CheckConsistency();
}

TEST(DeltaStoreTest, QRowLifecycleAndRenumbering) {
  DeltaStore store(PqShape{1, 2});
  store.InsertPRow(MakeP(1, kNullNodeId, 0, 3, {1}));
  store.InsertQRow(1, MakeQ(0, {kNullNodeId, 2}));
  store.InsertQRow(1, MakeQ(1, {2, 3}));
  store.InsertQRow(1, MakeQ(2, {3, 4}));
  store.InsertQRow(1, MakeQ(3, {4, kNullNodeId}));
  EXPECT_EQ(store.q_row_count(), 4);
  ASSERT_NE(store.FindQRow(1, 2), nullptr);
  EXPECT_EQ(store.FindQRow(1, 2)->ids[0], 3);

  // Shift rows >= 2 up by 2 (e.g. a sibling expansion).
  store.RenumberQRows(1, 2, 2);
  EXPECT_EQ(store.FindQRow(1, 2), nullptr);
  ASSERT_NE(store.FindQRow(1, 4), nullptr);
  EXPECT_EQ(store.FindQRow(1, 4)->ids[0], 3);
  EXPECT_EQ(store.FindQRow(1, 5)->ids[0], 4);
  EXPECT_EQ(store.q_row_count(), 4);

  // And back down.
  store.RenumberQRows(1, 3, -2);
  ASSERT_NE(store.FindQRow(1, 2), nullptr);
  EXPECT_EQ(store.FindQRow(1, 2)->ids[0], 3);

  store.EraseQRow(1, 2);
  EXPECT_EQ(store.q_row_count(), 3);
  store.EraseAllQRows(1);
  EXPECT_EQ(store.q_row_count(), 0);
  store.CheckConsistency();
}

TEST(DeltaStoreTest, SetQRowEntryUpdatesInPlace) {
  DeltaStore store(PqShape{1, 2});
  store.InsertQRow(9, MakeQ(0, {5, 6}));
  store.SetQRowEntry(9, 0, 1, 7, 7000);
  EXPECT_EQ(store.FindQRow(9, 0)->ids[1], 7);
  EXPECT_EQ(store.FindQRow(9, 0)->labels[1], 7000u);
}

TEST(DeltaStoreTest, JoinEmitsPqGrams) {
  DeltaStore store(PqShape{2, 2});
  store.InsertPRow(MakeP(5, 1, 0, 2, {1, 5}));
  store.InsertQRow(5, MakeQ(0, {kNullNodeId, 6}));
  store.InsertQRow(5, MakeQ(1, {6, 7}));
  // A p-row with no q-rows contributes nothing.
  store.InsertPRow(MakeP(9, 1, 1, 0, {1, 9}));

  std::set<PqGram> grams = pqidx::testing::StoreToSet(store);
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(store.CountPqGrams(), 2);
  PqGram first = *grams.begin();
  EXPECT_EQ(first.ids.size(), 4u);
  EXPECT_EQ(first.ids[0], 1);
  EXPECT_EQ(first.ids[1], 5);
}

TEST(DeltaStoreTest, JoinWithoutPRowAborts) {
  DeltaStore store(PqShape{1, 1});
  store.InsertQRow(5, MakeQ(0, {6}));
  EXPECT_DEATH(pqidx::testing::StoreToSet(store), "without a matching");
}

}  // namespace
}  // namespace pqidx
