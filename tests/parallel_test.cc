// Tests for the thread pool and parallel collection indexing.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/distance.h"
#include "core/parallel_build.h"
#include "tree/generators.h"

namespace pqidx {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // nothing scheduled
  pool.Schedule([] {});
  pool.Wait();
  pool.Wait();  // repeated waits are fine
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  pool.ParallelFor(0, [&](int64_t) { FAIL(); });  // empty range: no calls
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }  // destructor waits
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelBuildTest, MatchesSequentialBuild) {
  Rng rng(1);
  const PqShape shape{3, 3};
  auto dict = std::make_shared<LabelDict>();
  std::vector<Tree> trees;
  for (int i = 0; i < 20; ++i) {
    trees.push_back(GenerateXmarkLike(dict, &rng, 200));
  }
  ForestIndex sequential(shape);
  for (size_t i = 0; i < trees.size(); ++i) {
    sequential.AddTree(static_cast<TreeId>(i), trees[i]);
  }
  for (int threads : {1, 2, 4}) {
    ForestIndex parallel = BuildForestIndexParallel(trees, shape, threads);
    EXPECT_EQ(parallel, sequential) << threads << " threads";
  }
}

TEST(ParallelBuildTest, ExplicitIdsPreserved) {
  Rng rng(2);
  const PqShape shape{2, 2};
  Tree a = GenerateDblpLike(nullptr, &rng, 5);
  Tree b = GenerateDblpLike(nullptr, &rng, 5);
  std::vector<std::pair<TreeId, const Tree*>> refs = {{7, &a}, {42, &b}};
  ForestIndex forest = BuildForestIndexParallel(refs, shape, 2);
  EXPECT_NE(forest.Find(7), nullptr);
  EXPECT_NE(forest.Find(42), nullptr);
  EXPECT_EQ(forest.Find(0), nullptr);
}

TEST(ParallelBuildTest, AllDistancesParallelMatchesSequential) {
  Rng rng(3);
  const PqShape shape{3, 3};
  auto dict = std::make_shared<LabelDict>();
  ForestIndex forest(shape);
  for (TreeId id = 0; id < 15; ++id) {
    forest.AddTree(id, GenerateXmarkLike(dict, &rng, 150));
  }
  Tree query = GenerateXmarkLike(dict, &rng, 150);
  PqGramIndex query_index = BuildIndex(query, shape);
  std::vector<double> parallel =
      AllDistancesParallel(forest, query_index, 4);
  std::vector<TreeId> ids = forest.TreeIds();
  ASSERT_EQ(parallel.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i],
                     PqGramDistance(query_index, *forest.Find(ids[i])));
  }
}

}  // namespace
}  // namespace pqidx
