// Tests for the thread pool and parallel collection indexing, including
// TSan-targeted stress cases (many tiny tasks, waiters racing schedulers,
// concurrent parallel builds). Under -DPQIDX_SANITIZE=thread these are
// the primary race detectors for ThreadPool and parallel_build.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/distance.h"
#include "core/parallel_build.h"
#include "tree/generators.h"

namespace pqidx {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // nothing scheduled
  pool.Schedule([] {});
  pool.Wait();
  pool.Wait();  // repeated waits are fine
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  pool.ParallelFor(0, [&](int64_t) { FAIL(); });  // empty range: no calls
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }  // destructor waits
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DestructorDrainsDeepQueueOnSingleWorker) {
  // One worker, many queued tasks: destruction must run every queued task
  // before joining, even when the queue is far deeper than the pool.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 500; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ParallelForZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](int64_t) { calls.fetch_add(1); });
  pool.ParallelFor(-5, [&](int64_t) { calls.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(calls.load(), 0);
}

#ifndef NDEBUG
TEST(ThreadPoolDeathTest, ReentrantScheduleFromWorkerIsCaught) {
  // Scheduling into the pool a task runs on races Wait()'s completion
  // accounting; debug builds must refuse instead of hanging.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.Schedule([&pool] { pool.Schedule([] {}); });
        pool.Wait();
      },
      "current_pool_");
}

TEST(ThreadPoolDeathTest, ReentrantWaitFromWorkerIsCaught) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.Schedule([&pool] { pool.Wait(); });
        pool.Wait();
      },
      "current_pool_");
}
#endif  // NDEBUG

TEST(ThreadPoolStressTest, ManySmallTasksManyRounds) {
  // Thousands of near-empty tasks maximize contention on the queue lock
  // and the in-flight counter; repeated Wait() rounds catch notify/wait
  // ordering bugs that a single drain hides.
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) {
      pool.Schedule([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
    }
    pool.Wait();
  }
  EXPECT_EQ(sum.load(), int64_t{50} * 199 * 200 / 2);
}

TEST(ThreadPoolStressTest, ConcurrentWaiters) {
  // Several external threads Wait() while tasks drain: every waiter must
  // observe the fully drained queue, and the all-done broadcast must not
  // race the last decrement.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    std::vector<std::thread> waiters;
    for (int w = 0; w < 4; ++w) {
      waiters.emplace_back([&pool] { pool.Wait(); });
    }
    for (std::thread& t : waiters) t.join();
    EXPECT_EQ(done.load(), (round + 1) * 100);
  }
}

TEST(ThreadPoolStressTest, ExternalSchedulersRaceWait) {
  // Producers on their own threads hammer Schedule while the owner
  // thread repeatedly Waits: exercises the Schedule/Wait handshake from
  // outside the pool (the supported fan-out pattern, concurrently).
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed] {
      for (int i = 0; i < kPerProducer; ++i) {
        pool.Schedule(
            [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  // Wait() concurrently with production: each call returns at some
  // transient quiescent point, which must be race-free even if more work
  // arrives right after.
  while (executed.load() < kProducers * kPerProducer) {
    pool.Wait();
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kProducers * kPerProducer);
}

TEST(ThreadPoolStressTest, ParallelForHighFanoutTinyBodies) {
  ThreadPool pool(8);
  std::vector<std::atomic<uint8_t>> hits(10000);
  for (int round = 0; round < 5; ++round) {
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(static_cast<int64_t>(hits.size()), [&](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ParallelBuildStressTest, ConcurrentForestBuilds) {
  // Two full parallel builds over the same (const) trees on separate
  // pools, racing each other: flushes out any hidden shared mutable
  // state in BuildIndex / ForestIndex assembly.
  Rng rng(11);
  const PqShape shape{2, 2};
  auto dict = std::make_shared<LabelDict>();
  std::vector<Tree> trees;
  for (int i = 0; i < 12; ++i) {
    trees.push_back(GenerateDblpLike(dict, &rng, 40));
  }
  ForestIndex sequential(shape);
  for (size_t i = 0; i < trees.size(); ++i) {
    sequential.AddTree(static_cast<TreeId>(i), trees[i]);
  }
  std::vector<ForestIndex> results(3, ForestIndex(shape));
  std::vector<std::thread> builders;
  for (int b = 0; b < 3; ++b) {
    builders.emplace_back([&trees, &results, b] {
      results[static_cast<size_t>(b)] =
          BuildForestIndexParallel(trees, PqShape{2, 2}, 3);
    });
  }
  for (std::thread& t : builders) t.join();
  for (const ForestIndex& result : results) {
    EXPECT_EQ(result, sequential);
  }
}

TEST(ParallelBuildTest, MatchesSequentialBuild) {
  Rng rng(1);
  const PqShape shape{3, 3};
  auto dict = std::make_shared<LabelDict>();
  std::vector<Tree> trees;
  for (int i = 0; i < 20; ++i) {
    trees.push_back(GenerateXmarkLike(dict, &rng, 200));
  }
  ForestIndex sequential(shape);
  for (size_t i = 0; i < trees.size(); ++i) {
    sequential.AddTree(static_cast<TreeId>(i), trees[i]);
  }
  for (int threads : {1, 2, 4}) {
    ForestIndex parallel = BuildForestIndexParallel(trees, shape, threads);
    EXPECT_EQ(parallel, sequential) << threads << " threads";
  }
}

TEST(ParallelBuildTest, ExplicitIdsPreserved) {
  Rng rng(2);
  const PqShape shape{2, 2};
  Tree a = GenerateDblpLike(nullptr, &rng, 5);
  Tree b = GenerateDblpLike(nullptr, &rng, 5);
  std::vector<std::pair<TreeId, const Tree*>> refs = {{7, &a}, {42, &b}};
  ForestIndex forest = BuildForestIndexParallel(refs, shape, 2);
  EXPECT_NE(forest.Find(7), nullptr);
  EXPECT_NE(forest.Find(42), nullptr);
  EXPECT_EQ(forest.Find(0), nullptr);
}

TEST(ParallelBuildTest, AllDistancesParallelMatchesSequential) {
  Rng rng(3);
  const PqShape shape{3, 3};
  auto dict = std::make_shared<LabelDict>();
  ForestIndex forest(shape);
  for (TreeId id = 0; id < 15; ++id) {
    forest.AddTree(id, GenerateXmarkLike(dict, &rng, 150));
  }
  Tree query = GenerateXmarkLike(dict, &rng, 150);
  PqGramIndex query_index = BuildIndex(query, shape);
  std::vector<double> parallel =
      AllDistancesParallel(forest, query_index, 4);
  std::vector<TreeId> ids = forest.TreeIds();
  ASSERT_EQ(parallel.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i],
                     PqGramDistance(query_index, *forest.Find(ids[i])));
  }
}

}  // namespace
}  // namespace pqidx
