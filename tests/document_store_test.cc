// Tests for the DocumentStore collection manager.

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "common/random.h"
#include "edit/edit_script.h"
#include "storage/document_store.h"
#include "storage/tree_store.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

std::string StoreDir(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Removes a leftover store directory from a previous test run.
void WipeStoreDir(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::remove((dir + "/" + name).c_str());
  }
  closedir(d);
  rmdir(dir.c_str());
}

using StorePtr = std::unique_ptr<DocumentStore>;

StorePtr MustCreate(const std::string& name, PqShape shape = PqShape{3, 3}) {
  WipeStoreDir(StoreDir(name));
  StatusOr<StorePtr> store = DocumentStore::Create(StoreDir(name), shape);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

TEST(DocumentStoreTest, IngestCheckoutRoundTrip) {
  Rng rng(1);
  StorePtr store = MustCreate("ds_basic");
  Tree doc = GenerateXmarkLike(nullptr, &rng, 150);
  StatusOr<TreeId> id = store->Ingest(doc);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);
  EXPECT_EQ(store->size(), 1);

  StatusOr<Tree> loaded = store->Checkout(*id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(ToNotation(*loaded), ToNotation(doc));
  EXPECT_TRUE(store->Verify().ok());
}

TEST(DocumentStoreTest, EditSessionWorkflow) {
  Rng rng(2);
  StorePtr store = MustCreate("ds_edit");
  Tree original = GenerateDblpLike(nullptr, &rng, 30);
  StatusOr<TreeId> id = store->Ingest(original);
  ASSERT_TRUE(id.ok());

  // Checkout, edit with logging, commit.
  StatusOr<Tree> session = store->Checkout(*id);
  ASSERT_TRUE(session.ok());
  EditLog log;
  GenerateEditScript(&session.value(), &rng, 20, EditScriptOptions{}, &log);
  ASSERT_TRUE(store->Commit(*id, *session, log).ok());
  ASSERT_TRUE(store->Verify().ok());

  // The committed version is what the next checkout sees.
  StatusOr<Tree> reloaded = store->Checkout(*id);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(ToNotation(*reloaded), ToNotation(*session));
}

TEST(DocumentStoreTest, CommitVersionWithoutLog) {
  Rng rng(3);
  StorePtr store = MustCreate("ds_version");
  Tree v1 = GenerateXmarkLike(nullptr, &rng, 120);
  StatusOr<TreeId> id = store->Ingest(v1);
  ASSERT_TRUE(id.ok());

  // An externally produced new version (no log available).
  Tree v2 = v1.Clone();
  EditLog scratch;
  GenerateEditScript(&v2, &rng, 10, EditScriptOptions{}, &scratch);
  ASSERT_TRUE(store->CommitVersion(*id, v2).ok());
  ASSERT_TRUE(store->Verify().ok());
  StatusOr<Tree> reloaded = store->Checkout(*id);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(ToNotation(*reloaded), ToNotation(v2));
}

TEST(DocumentStoreTest, LookupAcrossCollection) {
  Rng rng(4);
  auto dict = std::make_shared<LabelDict>();
  StorePtr store = MustCreate("ds_lookup");
  std::vector<Tree> docs;
  for (int i = 0; i < 6; ++i) {
    docs.push_back(GenerateXmarkLike(dict, &rng, 150));
    ASSERT_TRUE(store->Ingest(docs.back()).ok());
  }
  StatusOr<std::vector<LookupResult>> hits = store->Lookup(docs[2], 0.3);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ((*hits)[0].tree_id, 2);
  EXPECT_DOUBLE_EQ((*hits)[0].distance, 0.0);
}

TEST(DocumentStoreTest, PersistsAcrossReopen) {
  Rng rng(5);
  Tree doc = GenerateDblpLike(nullptr, &rng, 20);
  TreeId id;
  {
    StorePtr store = MustCreate("ds_reopen");
    StatusOr<TreeId> ingested = store->Ingest(doc);
    ASSERT_TRUE(ingested.ok());
    id = *ingested;
  }
  StatusOr<StorePtr> reopened = DocumentStore::Open(StoreDir("ds_reopen"));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 1);
  EXPECT_TRUE((*reopened)->Verify().ok());
  // New ingests continue the id sequence.
  StatusOr<TreeId> next = (*reopened)->Ingest(doc);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, id + 1);
}

TEST(DocumentStoreTest, RemoveDeletesDocumentAndIndex) {
  Rng rng(6);
  StorePtr store = MustCreate("ds_remove");
  Tree doc = GenerateDblpLike(nullptr, &rng, 10);
  StatusOr<TreeId> id = store->Ingest(doc);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store->Remove(*id).ok());
  EXPECT_EQ(store->size(), 0);
  EXPECT_FALSE(store->Checkout(*id).ok());
  EXPECT_FALSE(store->Remove(*id).ok());
  EXPECT_TRUE(store->Verify().ok());
}

TEST(DocumentStoreTest, ErrorsOnInvalidUse) {
  StorePtr store = MustCreate("ds_errors");
  Tree empty(std::make_shared<LabelDict>());
  EXPECT_FALSE(store->Ingest(empty).ok());
  EXPECT_FALSE(store->Checkout(42).ok());
  EditLog log;
  Tree doc = ParseTreeNotation("a(b)").value();
  EXPECT_FALSE(store->Commit(42, doc, log).ok());
  EXPECT_FALSE(store->CommitVersion(42, doc).ok());
  // Creating over an existing store is rejected.
  EXPECT_FALSE(DocumentStore::Create(StoreDir("ds_errors"), PqShape{3, 3})
                   .ok());
  // Opening a non-store directory is rejected.
  EXPECT_FALSE(DocumentStore::Open(StoreDir("ds_nonexistent")).ok());
}

TEST(DocumentStoreTest, VerifyDetectsIndexDocumentMismatch) {
  // A crash between the index commit and the tree-file replacement leaves
  // the index describing a version the tree file does not contain;
  // Verify must flag it.
  Rng rng(8);
  StorePtr store = MustCreate("ds_verify");
  Tree doc = GenerateDblpLike(nullptr, &rng, 15);
  StatusOr<TreeId> id = store->Ingest(doc);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store->Verify().ok());

  // Simulate the torn commit: replace the stored tree file with a
  // different document while the index still describes the original.
  Tree other = GenerateDblpLike(nullptr, &rng, 15);
  ASSERT_TRUE(
      SaveTree(other, StoreDir("ds_verify") + "/tree_0.bin").ok());
  Status status = store->Verify();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(DocumentStoreTest, OpenRejectsMissingTreeFile) {
  Rng rng(9);
  {
    StorePtr store = MustCreate("ds_missing_tree");
    Tree doc = GenerateDblpLike(nullptr, &rng, 5);
    ASSERT_TRUE(store->Ingest(doc).ok());
  }
  std::remove((StoreDir("ds_missing_tree") + "/tree_0.bin").c_str());
  EXPECT_FALSE(DocumentStore::Open(StoreDir("ds_missing_tree")).ok());
}

TEST(DocumentStoreTest, ManyDocumentsManySessions) {
  Rng rng(7);
  StorePtr store = MustCreate("ds_stress", PqShape{2, 3});
  std::vector<TreeId> ids;
  for (int i = 0; i < 8; ++i) {
    Tree doc = GenerateRandomTree(
        nullptr, &rng, {.num_nodes = 20 + static_cast<int>(
                                         rng.NextBounded(60))});
    StatusOr<TreeId> id = store->Ingest(doc);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (int round = 0; round < 3; ++round) {
    for (TreeId id : ids) {
      StatusOr<Tree> session = store->Checkout(id);
      ASSERT_TRUE(session.ok());
      EditLog log;
      GenerateEditScript(&session.value(), &rng, 8, EditScriptOptions{},
                         &log);
      ASSERT_TRUE(store->Commit(id, *session, log).ok());
    }
  }
  EXPECT_TRUE(store->Verify().ok());
}

}  // namespace
}  // namespace pqidx
