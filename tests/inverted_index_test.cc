// Tests for the inverted-postings lookup accelerator: result equivalence
// with the scanning ForestIndex, incremental maintenance, and posting
// bookkeeping.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "core/forest_index.h"
#include "core/incremental.h"
#include "core/inverted_index.h"
#include "edit/edit_script.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

void ExpectSameResults(const std::vector<LookupResult>& a,
                       const std::vector<LookupResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tree_id, b[i].tree_id) << "position " << i;
    EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance) << "position " << i;
  }
}

TEST(InvertedIndexTest, MatchesScanOnSmallForest) {
  ForestIndex forest(PqShape{2, 2});
  forest.AddTree(1, MustParse("a(b,c)"));
  forest.AddTree(2, MustParse("a(b,x)"));
  forest.AddTree(3, MustParse("z(w)"));
  InvertedForestIndex inverted(forest);
  inverted.CheckConsistency();

  Tree query = MustParse("a(b,c)");
  for (double tau : {0.0, 0.3, 0.7, 1.0}) {
    ExpectSameResults(inverted.Lookup(query, tau),
                      forest.Lookup(query, tau));
  }
}

TEST(InvertedIndexTest, TauOneReturnsEverything) {
  ForestIndex forest(PqShape{2, 2});
  forest.AddTree(1, MustParse("a(b)"));
  forest.AddTree(2, MustParse("x(y)"));  // shares nothing with the query
  InvertedForestIndex inverted(forest);
  EXPECT_EQ(inverted.Lookup(MustParse("a(b)"), 1.0).size(), 2u);
  EXPECT_EQ(inverted.Lookup(MustParse("a(b)"), 0.99).size(), 1u);
}

TEST(InvertedIndexTest, MatchesScanOnRandomForest) {
  Rng rng(1);
  auto dict = std::make_shared<LabelDict>();
  ForestIndex forest(PqShape{3, 3});
  for (TreeId id = 0; id < 30; ++id) {
    forest.AddTree(id, GenerateXmarkLike(dict, &rng, 150));
  }
  InvertedForestIndex inverted(forest);
  inverted.CheckConsistency();
  EXPECT_EQ(inverted.size(), 30);

  for (int trial = 0; trial < 5; ++trial) {
    Tree query = GenerateXmarkLike(dict, &rng, 150);
    for (double tau : {0.2, 0.5, 0.9, 1.0}) {
      ExpectSameResults(inverted.Lookup(query, tau),
                        forest.Lookup(query, tau));
    }
  }
}

TEST(InvertedIndexTest, AddReplaceRemove) {
  InvertedForestIndex inverted(PqShape{2, 2});
  Tree a = MustParse("a(b,c)");
  inverted.AddTree(7, a);
  EXPECT_EQ(inverted.size(), 1);
  EXPECT_EQ(inverted.TreeBagSize(7),
            BuildIndex(a, PqShape{2, 2}).size());
  // Replacing updates postings instead of accumulating.
  Tree b = MustParse("x(y)");
  inverted.AddTree(7, b);
  inverted.CheckConsistency();
  EXPECT_EQ(inverted.TreeBagSize(7), BuildIndex(b, PqShape{2, 2}).size());
  EXPECT_TRUE(inverted.RemoveTree(7));
  EXPECT_FALSE(inverted.RemoveTree(7));
  EXPECT_EQ(inverted.size(), 0);
  EXPECT_EQ(inverted.posting_entries(), 0);
  EXPECT_EQ(inverted.TreeBagSize(7), -1);
}

TEST(InvertedIndexTest, IncrementalUpdateMatchesRebuild) {
  Rng rng(2);
  const PqShape shape{3, 3};
  Tree doc = GenerateDblpLike(nullptr, &rng, 50);
  InvertedForestIndex inverted(shape);
  inverted.AddTree(1, doc);

  for (int round = 0; round < 5; ++round) {
    EditLog log;
    GenerateEditScript(&doc, &rng, 20, EditScriptOptions{}, &log);
    ASSERT_TRUE(inverted.ApplyLog(1, doc, log).ok());
    inverted.CheckConsistency();

    InvertedForestIndex rebuilt(shape);
    rebuilt.AddTree(1, doc);
    EXPECT_EQ(inverted.TreeBagSize(1), rebuilt.TreeBagSize(1));
    EXPECT_EQ(inverted.posting_entries(), rebuilt.posting_entries());
    EXPECT_EQ(inverted.distinct_tuples(), rebuilt.distinct_tuples());
  }
}

TEST(InvertedIndexTest, UpdateUnknownTreeFails) {
  InvertedForestIndex inverted(PqShape{2, 2});
  Tree doc = MustParse("a(b)");
  EditLog log;
  EXPECT_FALSE(inverted.ApplyLog(42, doc, log).ok());
  PqGramIndex empty(PqShape{2, 2});
  EXPECT_FALSE(inverted.UpdateTree(42, empty, empty).ok());
}

TEST(InvertedIndexTest, StaleDeltaRejected) {
  InvertedForestIndex inverted(PqShape{2, 2});
  Tree doc = MustParse("a(b)");
  inverted.AddTree(1, doc);
  // A minus-bag removing a tuple the tree never had.
  PqGramIndex plus(PqShape{2, 2});
  PqGramIndex minus(PqShape{2, 2});
  minus.Add(0xdeadbeef, 1);
  EXPECT_FALSE(inverted.UpdateTree(1, plus, minus).ok());
}

TEST(InvertedIndexTest, LookupAfterMixedMaintenance) {
  // Full lifecycle: adds, incremental updates, removals -- lookups always
  // agree with a scan over freshly built indexes.
  Rng rng(3);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{3, 3};
  std::vector<Tree> docs;
  InvertedForestIndex inverted(shape);
  for (TreeId id = 0; id < 10; ++id) {
    docs.push_back(GenerateXmarkLike(dict, &rng, 120));
    inverted.AddTree(id, docs.back());
  }
  // Evolve half the documents incrementally.
  for (TreeId id = 0; id < 5; ++id) {
    EditLog log;
    GenerateEditScript(&docs[id], &rng, 10, EditScriptOptions{}, &log);
    ASSERT_TRUE(inverted.ApplyLog(id, docs[id], log).ok());
  }
  inverted.RemoveTree(7);
  inverted.CheckConsistency();

  ForestIndex scan(shape);
  for (TreeId id = 0; id < 10; ++id) {
    if (id == 7) continue;
    scan.AddTree(id, docs[id]);
  }
  Tree query = docs[2].Clone();
  ExpectSameResults(inverted.Lookup(query, 0.8), scan.Lookup(query, 0.8));
}

}  // namespace
}  // namespace pqidx
