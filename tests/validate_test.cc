// Tests for the debug invariant validators (core/validate.h): they must
// accept freshly built and incrementally maintained indexes and reject
// states that violate the rebuild identity, with a usable diagnostic.

#include "core/validate.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/random.h"
#include "core/incremental.h"
#include "edit/edit_script.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

TEST(ValidateTest, FreshIndexValidates) {
  Rng rng(1);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 40});
  PqGramIndex index = BuildIndex(tree, PqShape{3, 3});
  EXPECT_TRUE(ValidatePqGramIndex(index).ok());
  EXPECT_TRUE(ValidateIndexAgainstTree(index, tree).ok());
}

TEST(ValidateTest, EmptyIndexValidatesInternally) {
  PqGramIndex index(PqShape{2, 2});
  EXPECT_TRUE(ValidatePqGramIndex(index).ok());
}

TEST(ValidateTest, DivergedBagRejectedWithDiagnostic) {
  Rng rng(2);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 20});
  PqGramIndex index = BuildIndex(tree, PqShape{3, 3});
  index.Add(PqGramFingerprint{0x1234}, 2);  // bag no longer matches the tree
  Status status = ValidateIndexAgainstTree(index, tree);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("diverges"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("got 2, want 0"), std::string::npos)
      << status.ToString();
}

TEST(ValidateTest, MissingPqGramRejected) {
  Rng rng(3);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 20});
  PqGramIndex index = BuildIndex(tree, PqShape{2, 2});
  // Remove one occurrence of some fingerprint present in the bag.
  PqGramFingerprint victim = index.counts().begin()->first;
  index.Remove(victim, 1);
  EXPECT_FALSE(ValidateIndexAgainstTree(index, tree).ok());
}

TEST(ValidateTest, ShapeMismatchDetectedAgainstTree) {
  Rng rng(4);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 15});
  PqGramIndex index = BuildIndex(tree, PqShape{1, 2});
  // Same tree, different shape: the rebuild uses index.shape(), so a
  // (1,2) bag validates against the tree under (1,2) but a (3,3) bag of
  // a *different* tree does not validate here.
  EXPECT_TRUE(ValidateIndexAgainstTree(index, tree).ok());
  Tree other = GenerateRandomTree(nullptr, &rng, {.num_nodes = 16});
  EXPECT_FALSE(ValidateIndexAgainstTree(index, other).ok());
}

TEST(ValidateTest, IncrementallyMaintainedIndexValidates) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Tree t0 = GenerateRandomTree(nullptr, &rng, {.num_nodes = 25});
    Tree tn = t0.Clone();
    EditLog log;
    GenerateEditScript(&tn, &rng, 15, EditScriptOptions{}, &log);
    PqGramIndex index = BuildIndex(t0, PqShape{3, 3});
    ASSERT_TRUE(UpdateIndex(&index, tn, log).ok());
    Status validated = ValidateIndexAgainstTree(index, tn);
    EXPECT_TRUE(validated.ok()) << validated.ToString();
    // And the oracle distinguishes the pre-edit tree.
    if (log.size() > 0 && !(BuildIndex(t0, PqShape{3, 3}) == index)) {
      EXPECT_FALSE(ValidateIndexAgainstTree(index, t0).ok());
    }
  }
}

TEST(ValidateTest, ForestValidatesAndDetectsDivergence) {
  Rng rng(6);
  const PqShape shape{3, 3};
  ForestIndex forest(shape);
  std::vector<Tree> trees;
  for (TreeId id = 0; id < 5; ++id) {
    trees.push_back(GenerateDblpLike(nullptr, &rng, 8));
  }
  std::vector<std::pair<TreeId, const Tree*>> refs;
  for (TreeId id = 0; id < 5; ++id) {
    forest.AddTree(id, trees[static_cast<size_t>(id)]);
    refs.emplace_back(id, &trees[static_cast<size_t>(id)]);
  }
  EXPECT_TRUE(ValidateForestIndex(forest).ok());
  EXPECT_TRUE(ValidateForestAgainstTrees(forest, refs).ok());

  // Swap one tree's index for another tree's bag: internal invariants
  // still hold, but the rebuild cross-check must flag tree 0.
  forest.AddIndex(0, BuildIndex(trees[1], shape));
  EXPECT_TRUE(ValidateForestIndex(forest).ok());
  Status status = ValidateForestAgainstTrees(forest, refs);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("tree 0"), std::string::npos)
      << status.ToString();

  // Cardinality mismatch.
  forest.RemoveTree(4);
  EXPECT_FALSE(ValidateForestAgainstTrees(forest, refs).ok());
}

TEST(ValidateTest, ForestApplyLogStaysValid) {
  Rng rng(7);
  const PqShape shape{2, 3};
  ForestIndex forest(shape);
  Tree t0 = GenerateXmarkLike(nullptr, &rng, 30);
  forest.AddTree(42, t0);
  Tree tn = t0.Clone();
  EditLog log;
  GenerateEditScript(&tn, &rng, 12, EditScriptOptions{}, &log);
  ASSERT_TRUE(forest.ApplyLog(42, tn, log).ok());
  std::vector<std::pair<TreeId, const Tree*>> refs = {{42, &tn}};
  Status validated = ValidateForestAgainstTrees(forest, refs);
  EXPECT_TRUE(validated.ok()) << validated.ToString();
}

}  // namespace
}  // namespace pqidx
