// Tests for the annotated synchronization wrappers (common/sync.h):
// mutual exclusion through Mutex/MutexLock, reader/writer semantics of
// SharedMutex, CondVar signaling, and the ticket-ordered Turnstile the
// commit pipeline serializes its validation and storage phases with.
// The concurrency cases are TSan targets (see .github/workflows/ci.yml).

#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace pqidx {
namespace {

TEST(SyncTest, MutexProvidesMutualExclusion) {
  Mutex mutex;
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mutex);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIncrements);
}

TEST(SyncTest, MutexTryLockReportsContention) {
  Mutex mutex;
  mutex.Lock();
  EXPECT_FALSE(mutex.TryLock());
  mutex.Unlock();
  EXPECT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(SyncTest, MutexLockManualUnlockRelock) {
  // The group-commit leader drops the queue lock around the batch
  // commit and reacquires it to mark results; MutexLock::Unlock/Lock is
  // that window.
  Mutex mutex;
  MutexLock lock(&mutex);
  lock.Unlock();
  EXPECT_TRUE(mutex.TryLock());
  mutex.Unlock();
  lock.Lock();
  EXPECT_FALSE(mutex.TryLock());
}

TEST(SyncTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex mutex;
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      ReaderLock lock(&mutex);
      int inside = readers_inside.fetch_add(1) + 1;
      int seen = max_readers.load();
      while (inside > seen &&
             !max_readers.compare_exchange_weak(seen, inside)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      readers_inside.fetch_sub(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(max_readers.load(), 1) << "readers never overlapped";
}

TEST(SyncTest, SharedMutexWriterExcludesReaders) {
  SharedMutex mutex;
  int64_t value = 0;
  std::atomic<bool> start{false};
  std::thread writer([&] {
    WriterLock lock(&mutex);
    start.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    value = 42;
  });
  while (!start.load()) std::this_thread::yield();
  {
    ReaderLock lock(&mutex);
    // The writer published before releasing; a reader admitted during
    // the write window would have seen 0.
    EXPECT_EQ(value, 42);
  }
  writer.join();
}

TEST(SyncTest, CondVarWakesWaiter) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread signaler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    MutexLock lock(&mutex);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mutex);
    while (!ready) cv.Wait(&mutex);
    EXPECT_TRUE(ready);
  }
  signaler.join();
}

TEST(SyncTest, TurnstileAdmitsTicketsInOrder) {
  // Threads arrive with shuffled start delays but must pass the
  // turnstile strictly by ticket -- the property the commit pipeline's
  // validation and storage phases rely on for WAL ordering.
  Turnstile turnstile;
  constexpr int kTickets = 8;
  Mutex order_mutex;
  std::vector<uint64_t> order;
  std::vector<std::thread> threads;
  threads.reserve(kTickets);
  for (int t = 0; t < kTickets; ++t) {
    threads.emplace_back([&, t] {
      // Later tickets tend to arrive first, forcing real waits.
      std::this_thread::sleep_for(
          std::chrono::milliseconds((kTickets - t) * 2));
      turnstile.Await(static_cast<uint64_t>(t));
      {
        MutexLock lock(&order_mutex);
        order.push_back(static_cast<uint64_t>(t));
      }
      turnstile.Finish();
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(order.size(), static_cast<size_t>(kTickets));
  for (int t = 0; t < kTickets; ++t) {
    EXPECT_EQ(order[static_cast<size_t>(t)], static_cast<uint64_t>(t));
  }
}

TEST(SyncTest, TurnstilePipelinesDisjointPhases) {
  // Two turnstiles chained like the commit pipeline's validate/storage
  // phases: every ticket passes phase V before phase S, both in ticket
  // order, while different tickets overlap across phases.
  Turnstile validate;
  Turnstile storage;
  constexpr int kTickets = 6;
  std::atomic<int> validated{0};
  std::atomic<int> stored{0};
  std::vector<std::thread> threads;
  threads.reserve(kTickets);
  for (int t = 0; t < kTickets; ++t) {
    threads.emplace_back([&, t] {
      const auto ticket = static_cast<uint64_t>(t);
      validate.Await(ticket);
      EXPECT_EQ(validated.fetch_add(1), t);
      validate.Finish();
      storage.Await(ticket);
      // Storage order matches validation order, so everything this
      // ticket validated against has already committed.
      EXPECT_EQ(stored.fetch_add(1), t);
      EXPECT_GE(validated.load(), stored.load());
      storage.Finish();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(validated.load(), kTickets);
  EXPECT_EQ(stored.load(), kTickets);
}

}  // namespace
}  // namespace pqidx
