// Tests for the edit mapping (Zhang-Shasha backtrace) and the derived
// edit scripts (change detection).

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/random.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "edit/tree_diff.h"
#include "ted/zhang_shasha.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

// Checks that `mapping` is a valid edit mapping between t1 and t2
// (one-to-one, ancestor-order preserving, sibling-order preserving) and
// that its cost equals `distance`. When `optimal` is set the distance
// must equal the unconstrained tree edit distance.
void CheckMappingValid(const Tree& t1, const Tree& t2,
                       const TreeEditResult& result, bool optimal = true) {
  std::set<NodeId> used1, used2;
  for (auto [u, v] : result.mapping) {
    ASSERT_TRUE(t1.Contains(u));
    ASSERT_TRUE(t2.Contains(v));
    ASSERT_TRUE(used1.insert(u).second) << "node mapped twice in t1";
    ASSERT_TRUE(used2.insert(v).second) << "node mapped twice in t2";
  }
  // Ancestor preservation (pairwise).
  auto is_ancestor = [](const Tree& t, NodeId a, NodeId d) {
    for (NodeId cur = t.parent(d); cur != kNullNodeId; cur = t.parent(cur)) {
      if (cur == a) return true;
    }
    return false;
  };
  for (auto [u1, v1] : result.mapping) {
    for (auto [u2, v2] : result.mapping) {
      EXPECT_EQ(is_ancestor(t1, u1, u2), is_ancestor(t2, v1, v2));
    }
  }
  // Cost = renames + deletes + inserts.
  int renames = 0;
  for (auto [u, v] : result.mapping) {
    if (t1.LabelString(u) != t2.LabelString(v)) ++renames;
  }
  int cost = renames + (t1.size() - static_cast<int>(result.mapping.size())) +
             (t2.size() - static_cast<int>(result.mapping.size()));
  EXPECT_EQ(cost, result.distance);
  if (optimal) {
    EXPECT_EQ(result.distance, TreeEditDistance(t1, t2));
  } else {
    EXPECT_GE(result.distance, TreeEditDistance(t1, t2));
    EXPECT_LE(result.distance, TreeEditDistance(t1, t2) + 2);
  }
}

TEST(MappingTest, IdenticalTreesMapEverything) {
  Tree a = MustParse("a(b,c(e,f),d)");
  Tree b = MustParse("a(b,c(e,f),d)");
  TreeEditResult result = TreeEditDistanceWithMapping(a, b);
  EXPECT_EQ(result.distance, 0);
  EXPECT_EQ(result.mapping.size(), 6u);
  CheckMappingValid(a, b, result);
}

TEST(MappingTest, ClassicExample) {
  Tree a = MustParse("f(d(a,c(b)),e)");
  Tree b = MustParse("f(c(d(a,b)),e)");
  TreeEditResult result = TreeEditDistanceWithMapping(a, b);
  EXPECT_EQ(result.distance, 2);
  CheckMappingValid(a, b, result);
}

TEST(MappingTest, RootPreservingMappingPairsRoots) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Tree a = GenerateRandomTree(nullptr, &rng, {.num_nodes = 10});
    Tree b = GenerateRandomTree(nullptr, &rng, {.num_nodes = 10});
    TreeEditResult result = RootPreservingEditMapping(a, b);
    bool roots_paired = false;
    for (auto [u, v] : result.mapping) {
      if (u == a.root()) {
        roots_paired = v == b.root();
        break;
      }
    }
    EXPECT_TRUE(roots_paired);
    CheckMappingValid(a, b, result, /*optimal=*/false);

    // The unconstrained mapping may leave a root unmapped but must never
    // leave both unmapped, and is optimal.
    TreeEditResult unconstrained = TreeEditDistanceWithMapping(a, b);
    bool a_root_mapped = false, b_root_mapped = false;
    for (auto [u, v] : unconstrained.mapping) {
      a_root_mapped |= u == a.root();
      b_root_mapped |= v == b.root();
    }
    EXPECT_TRUE(a_root_mapped || b_root_mapped);
    CheckMappingValid(a, b, unconstrained);
  }
}

TEST(MappingTest, RandomPairsProduceValidOptimalMappings) {
  Rng rng(2);
  for (int trial = 0; trial < 25; ++trial) {
    Tree a = GenerateRandomTree(
        nullptr, &rng,
        {.num_nodes = 1 + static_cast<int>(rng.NextBounded(25)),
         .alphabet_size = 4});
    Tree b = GenerateRandomTree(
        nullptr, &rng,
        {.num_nodes = 1 + static_cast<int>(rng.NextBounded(25)),
         .alphabet_size = 4});
    CheckMappingValid(a, b, TreeEditDistanceWithMapping(a, b));
  }
}

TEST(TreeDiffTest, IdenticalTreesGiveEmptyScript) {
  Tree a = MustParse("a(b,c)");
  Tree b = MustParse("a(b,c)");
  TreeDiff diff = ComputeEditScript(a, b);
  EXPECT_EQ(diff.distance, 0);
  EXPECT_TRUE(diff.operations.empty());
}

TEST(TreeDiffTest, SingleOperations) {
  struct Case {
    const char* from;
    const char* to;
    int distance;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"a(b,c)", "a(b,x)", 1},          // rename
           {"a(b,c(e,f),d)", "a(b,e,f,d)", 1},  // delete internal
           {"a(b,c)", "a(x(b,c))", 1},       // insert wrapping
           {"a(b)", "a(b,c)", 1},            // insert leaf
           {"a(b,c)", "a(c)", 1},            // delete leaf
       }) {
    Tree from = MustParse(c.from);
    Tree to = MustParse(c.to);
    TreeDiff diff = ComputeEditScript(from, to);
    EXPECT_EQ(diff.distance, c.distance) << c.from << " -> " << c.to;
    Tree work = from.Clone();
    for (const EditOperation& op : diff.operations) {
      ASSERT_TRUE(op.ApplyTo(&work).ok());
    }
    EXPECT_EQ(ToNotation(work), c.to);
  }
}

TEST(TreeDiffTest, ScriptReachesTargetOnRandomPairs) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    Tree from = GenerateRandomTree(
        nullptr, &rng,
        {.num_nodes = 1 + static_cast<int>(rng.NextBounded(30)),
         .alphabet_size = 5});
    Tree to = GenerateRandomTree(
        nullptr, &rng,
        {.num_nodes = 1 + static_cast<int>(rng.NextBounded(30)),
         .alphabet_size = 5});
    TreeDiff diff = ComputeEditScript(from, to);
    EXPECT_GE(diff.distance, TreeEditDistance(from, to));
    EXPECT_LE(diff.distance, TreeEditDistance(from, to) + 2);
    Tree work = from.Clone();
    EditLog log;
    ASSERT_TRUE(ApplyDiff(diff, &work, &log).ok());
    ASSERT_EQ(ToNotation(work), ToNotation(to))
        << "from " << ToNotation(from);
    // The recorded log undoes the script.
    ASSERT_TRUE(log.UndoAll(&work).ok());
    EXPECT_EQ(ToNotationWithIds(work), ToNotationWithIds(from));
  }
}

TEST(TreeDiffTest, ScriptOfPerturbedTreeIsShort) {
  // A few random edits must yield a script no longer than the edit count.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Tree from = GenerateRandomTree(nullptr, &rng, {.num_nodes = 40});
    Tree to = from.Clone();
    EditLog scratch;
    int ops = 1 + static_cast<int>(rng.NextBounded(6));
    GenerateEditScript(&to, &rng, ops, EditScriptOptions{}, &scratch);
    TreeDiff diff = ComputeEditScript(from, to);
    EXPECT_LE(diff.distance, ops);
  }
}

TEST(TreeDiffTest, DiffLogDrivesIncrementalIndexUpdate) {
  // The change-detection pipeline end to end: two versions, no log ->
  // diff -> inverse log -> incremental index maintenance.
  Rng rng(5);
  for (const PqShape shape : {PqShape{3, 3}, PqShape{1, 2}}) {
    Tree v1 = GenerateXmarkLike(nullptr, &rng, 200);
    Tree v2_shape = GenerateXmarkLike(v1.dict_ptr(), &rng, 200);

    PqGramIndex index = BuildIndex(v1, shape);
    TreeDiff diff = ComputeEditScript(v1, v2_shape);
    EditLog log;
    ASSERT_TRUE(ApplyDiff(diff, &v1, &log).ok());  // v1 becomes ~v2
    ASSERT_TRUE(UpdateIndex(&index, v1, log).ok());
    EXPECT_EQ(index, BuildIndex(v1, shape));
    // And the maintained index matches the other version's index, since
    // the trees are isomorphic.
    EXPECT_EQ(index.size(), BuildIndex(v2_shape, shape).size());
  }
}

TEST(TreeDiffTest, CrossDictionaryDiff) {
  Tree from = MustParse("a(b,c)");
  Tree to = MustParse("a(d(b),c)");  // separate dictionary
  TreeDiff diff = ComputeEditScript(from, to);
  EXPECT_EQ(diff.distance, 1);
  Tree work = from.Clone();
  for (const EditOperation& op : diff.operations) {
    ASSERT_TRUE(op.ApplyTo(&work).ok());
  }
  EXPECT_EQ(ToNotation(work), "a(d(b),c)");
}

}  // namespace
}  // namespace pqidx
