// Tests for record-level indexing of one large document.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/record_index.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

TEST(RecordIndexTest, DefaultRecordsAreRootChildren) {
  Tree doc = MustParse("dblp(article(t1),book(t2),article(t3))");
  ForestIndex forest = BuildRecordIndex(doc, PqShape{2, 2});
  EXPECT_EQ(forest.size(), 3);
  // Record ids are the node ids of the root's children.
  for (NodeId c : doc.children(doc.root())) {
    EXPECT_NE(forest.Find(static_cast<TreeId>(c)), nullptr);
  }
}

TEST(RecordIndexTest, PredicateSelectsByLabel) {
  Tree doc = MustParse("lib(shelf(book(a),book(b)),shelf(book(c)))");
  LabelId book = doc.mutable_dict()->Find("book");
  ASSERT_NE(book, kNullLabelId);
  auto pred = [book](const Tree& t, NodeId n) {
    return t.label(n) == book;
  };
  std::vector<NodeId> records = SelectRecordRoots(doc, pred);
  EXPECT_EQ(records.size(), 3u);
  for (NodeId r : records) {
    EXPECT_EQ(doc.LabelString(r), "book");
  }
}

TEST(RecordIndexTest, RecordsDoNotNest) {
  // A record-labeled node inside a record is not re-selected.
  Tree doc = MustParse("r(rec(x,rec(y)),z)");
  LabelId rec = doc.mutable_dict()->Find("rec");
  auto pred = [rec](const Tree& t, NodeId n) { return t.label(n) == rec; };
  std::vector<NodeId> records = SelectRecordRoots(doc, pred);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(doc.parent(records[0]), doc.root());
}

TEST(RecordIndexTest, ExtractRecordCopiesSubtree) {
  Tree doc = MustParse("r(a(b,c(d)),e)");
  NodeId a = doc.child(doc.root(), 0);
  Tree record = ExtractRecord(doc, a);
  EXPECT_EQ(ToNotation(record), "a(b,c(d))");
  record.CheckConsistency();
  // The host document is untouched.
  EXPECT_EQ(ToNotation(doc), "r(a(b,c(d)),e)");
}

TEST(RecordIndexTest, FindsDuplicateRecords) {
  Tree doc = MustParse(
      "dblp(article(author(smith),title(trees)),"
      "book(author(jones),title(xml)),"
      "article(author(smith),title(trees)))");
  auto pairs = FindSimilarRecordPairs(doc, PqShape{2, 2}, 0.05);
  ASSERT_EQ(pairs.size(), 1u);
  auto [ids, distance] = pairs[0];
  EXPECT_DOUBLE_EQ(distance, 0.0);
  EXPECT_EQ(doc.LabelString(ids.first), "article");
  EXPECT_EQ(doc.LabelString(ids.second), "article");
  EXPECT_NE(ids.first, ids.second);
}

TEST(RecordIndexTest, GeneratedBibliographyScale) {
  Rng rng(1);
  Tree doc = GenerateDblpLike(nullptr, &rng, 200);
  ForestIndex forest = BuildRecordIndex(doc, PqShape{2, 3});
  EXPECT_EQ(forest.size(), 200);
  // Looking up an extracted record finds itself exactly.
  NodeId some_record = doc.child(doc.root(), 57);
  Tree record = ExtractRecord(doc, some_record);
  std::vector<LookupResult> hits = forest.Lookup(record, 0.0);
  ASSERT_FALSE(hits.empty());
  bool found_self = false;
  for (const LookupResult& hit : hits) {
    found_self |= hit.tree_id == static_cast<TreeId>(some_record);
  }
  EXPECT_TRUE(found_self);
}

TEST(RecordIndexTest, EmptySelections) {
  Tree doc = MustParse("only");
  EXPECT_EQ(BuildRecordIndex(doc, PqShape{2, 2}).size(), 0);
  auto never = [](const Tree&, NodeId) { return false; };
  EXPECT_TRUE(SelectRecordRoots(doc, never).empty());
  EXPECT_TRUE(FindSimilarRecordPairs(doc, PqShape{2, 2}, 1.0).empty());
}

}  // namespace
}  // namespace pqidx
