// Tests for pq-gram profile computation (Definitions 1-2), including the
// paper's worked examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "core/pqgram.h"
#include "core/profile.h"
#include "test_util.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

using ::pqidx::testing::AllTestShapes;

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

// Builds the paper's Figure 2 tree T0 (ids n1..n6 in pre-order):
//   n1=a ( n2=b, n3=c ( n5=e, n6=f ), n4=d )
// Note the id order: the paper numbers children of the root before the
// grandchildren, so parse pre-order and translate.
Tree PaperT0() {
  // Pre-order parsing assigns: a=1, b=2, c=3, e=4, f=5, d=6. The paper's
  // ids are n4=d, n5=e, n6=f; only the *labels* matter for profile
  // contents, and id-sensitive tests below map ids explicitly.
  return MustParse("a(b,c(e,f),d)");
}

TEST(ProfileTest, PaperExample1ProfileSize) {
  // Example 1: the total number of 3,3-grams of T0 is 13.
  Tree t0 = PaperT0();
  EXPECT_EQ(ProfileSize(t0, PqShape{3, 3}), 13);
  EXPECT_EQ(ComputeProfile(t0, PqShape{3, 3}).size(), 13u);
}

TEST(ProfileTest, SingleNodeTree) {
  Tree tree = MustParse("a");
  for (const PqShape& shape : AllTestShapes()) {
    std::vector<PqGram> profile = ComputeProfile(tree, shape);
    ASSERT_EQ(profile.size(), 1u);
    // p-part: nulls + root; q-part: all nulls.
    EXPECT_EQ(profile[0].ids[shape.p - 1], tree.root());
    for (int j = 0; j < shape.p - 1; ++j) {
      EXPECT_EQ(profile[0].ids[j], kNullNodeId);
    }
    for (int j = 0; j < shape.q; ++j) {
      EXPECT_EQ(profile[0].ids[shape.p + j], kNullNodeId);
    }
  }
}

TEST(ProfileTest, AnchorCountsPerNode) {
  // A node with fanout f anchors f+q-1 pq-grams; a leaf anchors one.
  Tree tree = MustParse("a(b,c,d,e)");
  PqShape shape{2, 3};
  std::vector<PqGram> profile = ComputeProfile(tree, shape);
  int root_anchored = 0, leaf_anchored = 0;
  for (const PqGram& g : profile) {
    if (g.anchor(shape) == tree.root()) {
      ++root_anchored;
    } else {
      ++leaf_anchored;
    }
  }
  EXPECT_EQ(root_anchored, 4 + 3 - 1);
  EXPECT_EQ(leaf_anchored, 4);
}

TEST(ProfileTest, PaperExample2ProfileOfT0) {
  // Example 2 lists P0 for p=q=3 as node tuples. Translate the paper's
  // ids (n4=d, n5=e, n6=f) to ours (d=6, e=4, f=5).
  Tree t0 = PaperT0();
  auto grams = ComputeProfileSet(t0, PqShape{3, 3});
  ASSERT_EQ(grams.size(), 13u);

  auto has = [&](std::vector<NodeId> ids) {
    PqGram probe;
    probe.ids = ids;
    probe.labels.reserve(ids.size());
    for (NodeId id : ids) {
      probe.labels.push_back(id == kNullNodeId ? kNullLabelHash
                                               : t0.LabelHashOf(id));
    }
    return grams.contains(probe);
  };
  const NodeId n1 = 1, n2 = 2, n3 = 3, n4 = 6, n5 = 4, n6 = 5, _ = 0;
  // The 13 tuples of Example 2 (paper order).
  EXPECT_TRUE(has({_, _, n1, _, _, n2}));
  EXPECT_TRUE(has({_, _, n1, _, n2, n3}));
  EXPECT_TRUE(has({_, _, n1, n2, n3, n4}));
  EXPECT_TRUE(has({_, _, n1, n3, n4, _}));
  EXPECT_TRUE(has({_, _, n1, n4, _, _}));
  EXPECT_TRUE(has({_, n1, n2, _, _, _}));
  EXPECT_TRUE(has({_, n1, n3, _, _, n5}));
  EXPECT_TRUE(has({_, n1, n3, _, n5, n6}));
  EXPECT_TRUE(has({_, n1, n3, n5, n6, _}));
  EXPECT_TRUE(has({_, n1, n3, n6, _, _}));
  EXPECT_TRUE(has({n1, n3, n5, _, _, _}));
  EXPECT_TRUE(has({n1, n3, n6, _, _, _}));
  EXPECT_TRUE(has({_, n1, n4, _, _, _}));
}

TEST(ProfileTest, ProfileSizeMatchesEnumerationEverywhere) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    Tree tree = GenerateRandomTree(
        nullptr, &rng, {.num_nodes = 1 + static_cast<int>(rng.NextBounded(80))});
    for (const PqShape& shape : AllTestShapes()) {
      EXPECT_EQ(ProfileSize(tree, shape),
                static_cast<int64_t>(ComputeProfile(tree, shape).size()));
    }
  }
}

class ProfileEquivalenceTest : public ::testing::TestWithParam<PqShape> {};

TEST_P(ProfileEquivalenceTest, FastPathMatchesBruteForce) {
  const PqShape shape = GetParam();
  Rng rng(1000 + shape.p * 10 + shape.q);
  for (int trial = 0; trial < 20; ++trial) {
    int nodes = 1 + static_cast<int>(rng.NextBounded(60));
    Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = nodes});
    std::vector<PqGram> fast = ComputeProfile(tree, shape);
    std::vector<PqGram> brute = ComputeProfileBruteForce(tree, shape);
    std::sort(fast.begin(), fast.end());
    std::sort(brute.begin(), brute.end());
    ASSERT_EQ(fast, brute) << "shape (" << shape.p << "," << shape.q
                           << ") tree " << ToNotationWithIds(tree);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ProfileEquivalenceTest,
    ::testing::ValuesIn(pqidx::testing::AllTestShapes()),
    [](const ::testing::TestParamInfo<PqShape>& info) {
      return "p" + std::to_string(info.param.p) + "q" +
             std::to_string(info.param.q);
    });

TEST(ProfileTest, DeepChainTree) {
  // Chains exercise the null-padded p-part beyond the root.
  Tree tree = MustParse("a(b(c(d(e(f)))))");
  PqShape shape{4, 2};
  std::vector<PqGram> fast = ComputeProfile(tree, shape);
  std::vector<PqGram> brute = ComputeProfileBruteForce(tree, shape);
  std::sort(fast.begin(), fast.end());
  std::sort(brute.begin(), brute.end());
  EXPECT_EQ(fast, brute);
  EXPECT_EQ(fast.size(), 11u);  // 5 non-leaves x (1+2-1) rows + 1 leaf ... 5*2+1
}

TEST(ProfileTest, ViewRowsMatchWindowSemantics) {
  Tree tree = MustParse("a(b,c,d)");
  PqShape shape{1, 2};
  // Row r of the root covers child positions [r-1, r].
  std::vector<std::pair<int, std::vector<NodeId>>> rows;
  ForEachPqGram(tree, shape, [&](const PqGramView& view) {
    if (view.anchor != tree.root()) return;
    rows.emplace_back(view.row,
                      std::vector<NodeId>(view.ids + 1, view.ids + 3));
  });
  NodeId b = tree.child(tree.root(), 0), c = tree.child(tree.root(), 1),
         d = tree.child(tree.root(), 2);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], (std::pair<int, std::vector<NodeId>>{0, {0, b}}));
  EXPECT_EQ(rows[1], (std::pair<int, std::vector<NodeId>>{1, {b, c}}));
  EXPECT_EQ(rows[2], (std::pair<int, std::vector<NodeId>>{2, {c, d}}));
  EXPECT_EQ(rows[3], (std::pair<int, std::vector<NodeId>>{3, {d, 0}}));
}

}  // namespace
}  // namespace pqidx
