// Tests for the durable forest index: correctness against the in-memory
// index, incremental maintenance on disk, crash recovery, and catalog
// handling.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/random.h"
#include "core/forest_index.h"
#include "core/incremental.h"
#include "edit/edit_script.h"
#include "storage/persistent_forest_index.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

using StorePtr = std::unique_ptr<PersistentForestIndex>;

StorePtr MustCreate(const std::string& name, PqShape shape) {
  StatusOr<StorePtr> store =
      PersistentForestIndex::Create(TempPath(name), shape);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

StorePtr MustOpen(const std::string& name) {
  StatusOr<StorePtr> store = PersistentForestIndex::Open(TempPath(name));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

TEST(PersistentIndexTest, CreateAddLookupReopen) {
  const PqShape shape{3, 3};
  Rng rng(1);
  auto dict = std::make_shared<LabelDict>();
  Tree a = GenerateXmarkLike(dict, &rng, 200);
  Tree b = GenerateXmarkLike(dict, &rng, 200);
  {
    StorePtr store = MustCreate("pfi_basic.db", shape);
    ASSERT_TRUE(store->AddTree(1, a).ok());
    ASSERT_TRUE(store->AddTree(2, b).ok());
    store->CheckConsistency();
    EXPECT_EQ(store->size(), 2);
    EXPECT_EQ(store->TreeBagSize(1), BuildIndex(a, shape).size());
  }
  StorePtr store = MustOpen("pfi_basic.db");
  EXPECT_EQ(store->shape(), shape);
  EXPECT_EQ(store->size(), 2);
  store->CheckConsistency();

  // Distances match the in-memory index exactly.
  ForestIndex memory(shape);
  memory.AddTree(1, a);
  memory.AddTree(2, b);
  PqGramIndex query = BuildIndex(a, shape);
  auto on_disk = store->Lookup(query, 1.0);
  ASSERT_TRUE(on_disk.ok());
  auto in_memory = memory.Lookup(query, 1.0);
  ASSERT_EQ(on_disk->size(), in_memory.size());
  for (size_t i = 0; i < in_memory.size(); ++i) {
    EXPECT_EQ((*on_disk)[i].tree_id, in_memory[i].tree_id);
    EXPECT_DOUBLE_EQ((*on_disk)[i].distance, in_memory[i].distance);
  }
}

TEST(PersistentIndexTest, DuplicateAddRejected) {
  StorePtr store = MustCreate("pfi_dup.db", PqShape{2, 2});
  Tree a = ParseTreeNotation("a(b)").value();
  ASSERT_TRUE(store->AddTree(1, a).ok());
  EXPECT_FALSE(store->AddTree(1, a).ok());
  EXPECT_EQ(store->size(), 1);
}

TEST(PersistentIndexTest, IncrementalUpdateMatchesRebuild) {
  const PqShape shape{3, 3};
  Rng rng(2);
  Tree doc = GenerateDblpLike(nullptr, &rng, 80);
  StorePtr store = MustCreate("pfi_update.db", shape);
  ASSERT_TRUE(store->AddTree(5, doc).ok());

  for (int round = 0; round < 6; ++round) {
    EditLog log;
    GenerateEditScript(&doc, &rng, 25, EditScriptOptions{}, &log);
    ASSERT_TRUE(store->ApplyLog(5, doc, log).ok()) << "round " << round;
    store->CheckConsistency();
    StatusOr<PqGramIndex> materialized = store->MaterializeIndex(5);
    ASSERT_TRUE(materialized.ok());
    ASSERT_EQ(*materialized, BuildIndex(doc, shape)) << "round " << round;
  }
}

TEST(PersistentIndexTest, UpdatesSurviveReopen) {
  const PqShape shape{2, 3};
  Rng rng(3);
  Tree doc = GenerateXmarkLike(nullptr, &rng, 300);
  {
    StorePtr store = MustCreate("pfi_persist.db", shape);
    ASSERT_TRUE(store->AddTree(1, doc).ok());
    EditLog log;
    GenerateEditScript(&doc, &rng, 30, EditScriptOptions{}, &log);
    ASSERT_TRUE(store->ApplyLog(1, doc, log).ok());
  }
  StorePtr store = MustOpen("pfi_persist.db");
  StatusOr<PqGramIndex> materialized = store->MaterializeIndex(1);
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(*materialized, BuildIndex(doc, shape));
}

TEST(PersistentIndexTest, RemoveTreeReclaimsTuples) {
  const PqShape shape{2, 2};
  Rng rng(4);
  StorePtr store = MustCreate("pfi_remove.db", shape);
  Tree a = GenerateDblpLike(nullptr, &rng, 20);
  Tree b = GenerateDblpLike(nullptr, &rng, 20);
  ASSERT_TRUE(store->AddTree(1, a).ok());
  ASSERT_TRUE(store->AddTree(2, b).ok());
  ASSERT_TRUE(store->RemoveTree(1).ok());
  EXPECT_FALSE(store->RemoveTree(1).ok());
  store->CheckConsistency();  // no orphaned tuples
  EXPECT_EQ(store->size(), 1);
  EXPECT_EQ(store->TreeBagSize(1), -1);
  StatusOr<PqGramIndex> remaining = store->MaterializeIndex(2);
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(*remaining, BuildIndex(b, shape));
}

TEST(PersistentIndexTest, StaleDeltaRolledBackAtomically) {
  const PqShape shape{2, 2};
  StorePtr store = MustCreate("pfi_stale.db", shape);
  Tree a = ParseTreeNotation("a(b,c)").value();
  ASSERT_TRUE(store->AddTree(1, a).ok());
  int64_t size_before = store->TreeBagSize(1);

  // A minus-bag referencing tuples the tree does not have must fail and
  // leave the store exactly as it was (including partially applied
  // removals being rolled back).
  PqGramIndex plus(shape);
  plus.Add(111, 1);
  PqGramIndex minus(shape);
  minus.Add(0xdeadbeefdeadbeefULL, 1);
  EXPECT_FALSE(store->UpdateTree(1, plus, minus).ok());
  store->CheckConsistency();
  EXPECT_EQ(store->TreeBagSize(1), size_before);
  StatusOr<PqGramIndex> materialized = store->MaterializeIndex(1);
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(*materialized, BuildIndex(a, shape));
}

TEST(PersistentIndexTest, CrashDuringUpdateRecoversDurably) {
  const PqShape shape{3, 3};
  Rng rng(5);
  Tree doc = GenerateDblpLike(nullptr, &rng, 40);
  {
    StorePtr store = MustCreate("pfi_crash.db", shape);
    ASSERT_TRUE(store->AddTree(1, doc).ok());
    EditLog log;
    GenerateEditScript(&doc, &rng, 15, EditScriptOptions{}, &log);
    // The commit's WAL is sealed, then the process "dies" before the
    // in-place writes finish: the update is durable.
    ASSERT_TRUE(
        store->CrashNextCommit(Pager::CrashPoint::kDuringInPlace).ok());
    ASSERT_TRUE(store->ApplyLog(1, doc, log).ok());
  }
  StorePtr store = MustOpen("pfi_crash.db");
  store->CheckConsistency();
  StatusOr<PqGramIndex> materialized = store->MaterializeIndex(1);
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(*materialized, BuildIndex(doc, shape));
}

TEST(PersistentIndexTest, ManyTreesSpillCatalogAcrossPages) {
  const PqShape shape{1, 1};
  Rng rng(6);
  StorePtr store = MustCreate("pfi_manytrees.db", shape);
  const int kTrees = 800;  // > 340 catalog entries per page
  for (TreeId id = 0; id < kTrees; ++id) {
    Tree t = GenerateRandomTree(nullptr, &rng, {.num_nodes = 3});
    ASSERT_TRUE(store->AddTree(id, t).ok());
  }
  EXPECT_EQ(store->size(), kTrees);
  // Reopen and verify the catalog round-trips.
  std::string path = TempPath("pfi_manytrees.db");
  StatusOr<StorePtr> reopened = PersistentForestIndex::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), kTrees);
  (*reopened)->CheckConsistency();
}

TEST(PersistentIndexTest, BulkAddIsOneTransaction) {
  const PqShape shape{2, 2};
  Rng rng(9);
  StorePtr store = MustCreate("pfi_bulk.db", shape);
  std::vector<PqGramIndex> bags;
  std::vector<Tree> trees;
  for (int i = 0; i < 10; ++i) {
    trees.push_back(GenerateDblpLike(nullptr, &rng, 10));
    bags.push_back(BuildIndex(trees.back(), shape));
  }
  std::vector<std::pair<TreeId, const PqGramIndex*>> refs;
  for (size_t i = 0; i < bags.size(); ++i) {
    refs.emplace_back(static_cast<TreeId>(i), &bags[i]);
  }
  int64_t commits_before = store->pager().commits();
  ASSERT_TRUE(store->BulkAdd(refs).ok());
  EXPECT_EQ(store->pager().commits(), commits_before + 1);
  EXPECT_EQ(store->size(), 10);
  store->CheckConsistency();
  for (size_t i = 0; i < bags.size(); ++i) {
    StatusOr<PqGramIndex> loaded =
        store->MaterializeIndex(static_cast<TreeId>(i));
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(*loaded, bags[i]);
  }
  // Duplicate ids anywhere reject the whole batch atomically.
  std::vector<std::pair<TreeId, const PqGramIndex*>> dup = {
      {100, &bags[0]}, {3, &bags[1]}};
  EXPECT_FALSE(store->BulkAdd(dup).ok());
  EXPECT_EQ(store->size(), 10);
  EXPECT_EQ(store->TreeBagSize(100), -1);
  store->CheckConsistency();
}

TEST(PersistentIndexTest, CompactShrinksChurnedStore) {
  const PqShape shape{2, 2};
  Rng rng(8);
  std::string path = TempPath("pfi_compact_src.db");
  {
    StatusOr<StorePtr> store = PersistentForestIndex::Create(path, shape);
    ASSERT_TRUE(store.ok());
    // Grow with many trees, then remove most of them.
    for (TreeId id = 0; id < 40; ++id) {
      Tree t = GenerateDblpLike(nullptr, &rng, 15);
      ASSERT_TRUE((*store)->AddTree(id, t).ok());
    }
    for (TreeId id = 0; id < 38; ++id) {
      ASSERT_TRUE((*store)->RemoveTree(id).ok());
    }
    std::string compact_path = TempPath("pfi_compact_dst.db");
    ASSERT_TRUE((*store)->CompactInto(compact_path).ok());

    StatusOr<StorePtr> compacted = PersistentForestIndex::Open(compact_path);
    ASSERT_TRUE(compacted.ok());
    (*compacted)->CheckConsistency();
    EXPECT_EQ((*compacted)->size(), 2);
    for (TreeId id : {38, 39}) {
      StatusOr<PqGramIndex> a = (*store)->MaterializeIndex(id);
      StatusOr<PqGramIndex> b = (*compacted)->MaterializeIndex(id);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b);
    }
    EXPECT_LT((*compacted)->pager().page_count(),
              (*store)->pager().page_count());
  }
}

TEST(PersistentIndexTest, OpenRejectsGarbage) {
  std::string path = TempPath("pfi_garbage.db");
  std::string page(static_cast<size_t>(kPageSize), 'x');
  ASSERT_TRUE(WriteFile(path, page).ok());
  EXPECT_FALSE(PersistentForestIndex::Open(path).ok());
  EXPECT_FALSE(PersistentForestIndex::Open(TempPath("missing.db")).ok());
}

TEST(PersistentIndexTest, UnknownTreeOperationsFail) {
  StorePtr store = MustCreate("pfi_unknown.db", PqShape{2, 2});
  PqGramIndex query(PqShape{2, 2});
  EXPECT_FALSE(store->Distance(9, query).ok());
  EXPECT_FALSE(store->MaterializeIndex(9).ok());
  EXPECT_FALSE(store->RemoveTree(9).ok());
  Tree doc = ParseTreeNotation("a").value();
  EditLog log;
  EXPECT_FALSE(store->ApplyLog(9, doc, log).ok());
}

}  // namespace
}  // namespace pqidx
