// Systematic two-operation compositions: every ordered pair of operation
// kinds (INS/DEL/REN x INS/DEL/REN), targeted at the same region of a
// small tree, across all index shapes. The random property tests cover
// these statistically; this grid pins each interaction deterministically
// so a regression names the exact pair that broke.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_log.h"
#include "test_util.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

using ::pqidx::testing::AllTestShapes;

// The fixture tree: ids in pre-order.
//   r#1 ( a#2 ( b#3, c#4 ), d#5, e#6 ( f#7 ) )
constexpr const char* kBase = "r(a(b,c),d,e(f))";

struct OpMaker {
  const char* name;
  // Builds the forward operation against the current tree state.
  EditOperation (*make)(Tree* tree);
};

EditOperation MakeInsert(Tree* tree) {
  // Wrap the first two children of node 2 (or insert a leaf if node 2 is
  // gone or short on children).
  NodeId target = tree->Contains(2) ? 2 : tree->root();
  int count = std::min(2, tree->fanout(target));
  return EditOperation::Insert(tree->AllocateId(),
                               tree->mutable_dict()->Intern("w"), target, 0,
                               count);
}

EditOperation MakeDelete(Tree* tree) {
  // Delete node 2 if alive, else the root's first child.
  NodeId victim = tree->Contains(2) ? 2 : tree->child(tree->root(), 0);
  return EditOperation::Delete(victim);
}

EditOperation MakeRename(Tree* tree) {
  NodeId victim = tree->Contains(2) ? 2 : tree->child(tree->root(), 0);
  LabelId x = tree->mutable_dict()->Intern("x");
  if (tree->label(victim) == x) x = tree->mutable_dict()->Intern("y");
  return EditOperation::Rename(victim, x);
}

const std::vector<OpMaker>& Makers() {
  static const std::vector<OpMaker> makers = {
      {"INS", &MakeInsert}, {"DEL", &MakeDelete}, {"REN", &MakeRename}};
  return makers;
}

class OpCompositionTest : public ::testing::TestWithParam<PqShape> {};

TEST_P(OpCompositionTest, AllOrderedPairs) {
  const PqShape shape = GetParam();
  for (const OpMaker& first : Makers()) {
    for (const OpMaker& second : Makers()) {
      Tree t0 = ParseTreeNotation(kBase).value();
      Tree tn = t0.Clone();
      EditLog log;
      EditOperation op1 = first.make(&tn);
      ASSERT_TRUE(ApplyAndLog(op1, &tn, &log).ok())
          << first.name << " then " << second.name;
      EditOperation op2 = second.make(&tn);
      ASSERT_TRUE(ApplyAndLog(op2, &tn, &log).ok())
          << first.name << " then " << second.name;

      PqGramIndex index = BuildIndex(t0, shape);
      ASSERT_TRUE(UpdateIndex(&index, tn, log).ok())
          << first.name << " then " << second.name;
      ASSERT_EQ(index, BuildIndex(tn, shape))
          << first.name << " then " << second.name << " under shape ("
          << shape.p << "," << shape.q << "), Tn = "
          << ToNotationWithIds(tn);
    }
  }
}

TEST_P(OpCompositionTest, SelfInverseSequences) {
  // op followed by its exact inverse: the log must reduce to a no-op at
  // the index level (Delta+ and Delta- cancel exactly).
  const PqShape shape = GetParam();
  for (const OpMaker& maker : Makers()) {
    Tree t0 = ParseTreeNotation(kBase).value();
    Tree tn = t0.Clone();
    EditLog log;
    EditOperation op = maker.make(&tn);
    StatusOr<EditOperation> inverse = op.InverseOn(tn);
    ASSERT_TRUE(inverse.ok());
    ASSERT_TRUE(ApplyAndLog(op, &tn, &log).ok());
    ASSERT_TRUE(ApplyAndLog(*inverse, &tn, &log).ok());
    ASSERT_EQ(ToNotationWithIds(tn), ToNotationWithIds(t0)) << maker.name;

    PqGramIndex index = BuildIndex(t0, shape);
    PqGramIndex before = index;
    ASSERT_TRUE(UpdateIndex(&index, tn, log).ok()) << maker.name;
    ASSERT_EQ(index, before) << maker.name;
  }
}

TEST_P(OpCompositionTest, TripleStacksOnOneNode) {
  // Three consecutive operations funneled through the same node id:
  // rename, wrap (insert above), then delete the wrapper.
  const PqShape shape = GetParam();
  Tree t0 = ParseTreeNotation(kBase).value();
  Tree tn = t0.Clone();
  EditLog log;
  LabelId x = tn.mutable_dict()->Intern("x");
  ASSERT_TRUE(ApplyAndLog(EditOperation::Rename(2, x), &tn, &log).ok());
  NodeId wrapper = tn.AllocateId();
  ASSERT_TRUE(ApplyAndLog(
                  EditOperation::Insert(wrapper, x, tn.root(), 0, 2), &tn,
                  &log)
                  .ok());
  ASSERT_TRUE(ApplyAndLog(EditOperation::Delete(wrapper), &tn, &log).ok());

  PqGramIndex index = BuildIndex(t0, shape);
  ASSERT_TRUE(UpdateIndex(&index, tn, log).ok());
  ASSERT_EQ(index, BuildIndex(tn, shape));
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, OpCompositionTest,
    ::testing::ValuesIn(pqidx::testing::AllTestShapes()),
    [](const ::testing::TestParamInfo<PqShape>& info) {
      return "p" + std::to_string(info.param.p) + "q" +
             std::to_string(info.param.q);
    });

}  // namespace
}  // namespace pqidx
