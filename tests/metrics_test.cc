// Tests for the observability registry (common/metrics.h): bucket
// geometry, deterministic quantiles, exposition goldens, wire
// round-trips (service/wire.h), decoder hardening, concurrent recording
// under TSan, the instrumentation kill switch, and the slow-op log.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/serde.h"
#include "common/thread_pool.h"
#include "service/wire.h"

namespace pqidx {
namespace {

// Keeps the global kill switch on for every test in this binary (other
// tests in the suite assume the default) even when a test flips it.
class MetricsTest : public ::testing::Test {
 protected:
  ~MetricsTest() override { Metrics::set_enabled(true); }
};

TEST_F(MetricsTest, BucketGeometry) {
  // Bucket 0 holds <= 0; bucket i > 0 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  // Everything at or above 2^46 lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(int64_t{1} << 46),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::max()),
            Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            std::numeric_limits<int64_t>::max());

  // Every representable value round-trips: it is never above its
  // bucket's upper bound and always above the previous bucket's.
  for (int64_t v : {int64_t{1}, int64_t{2}, int64_t{100}, int64_t{4096},
                    int64_t{1} << 40, int64_t{1} << 45}) {
    int b = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(b)) << v;
    EXPECT_GT(v, Histogram::BucketUpperBound(b - 1)) << v;
  }
}

TEST_F(MetricsTest, HistogramAccumulates) {
  Metrics metrics;
  Histogram* h = metrics.histogram("h");
  EXPECT_EQ(metrics.histogram("h"), h);  // lookup-or-register is stable
  h->Record(1);
  h->Record(5);
  h->Record(5);
  h->Record(900);
  EXPECT_EQ(h->count(), 4);
  EXPECT_EQ(h->sum(), 911);
  EXPECT_EQ(h->max(), 900);
  EXPECT_EQ(h->bucket(1), 1);   // [1,1]
  EXPECT_EQ(h->bucket(3), 2);   // [4,7]
  EXPECT_EQ(h->bucket(10), 1);  // [512,1023]
}

TEST_F(MetricsTest, QuantilesAreDeterministicUpperBounds) {
  Metrics metrics;
  Histogram* h = metrics.histogram("q");
  EXPECT_EQ(h->Quantile(0.5), 0);  // empty
  // 100 values of 10 (bucket [8,15]) and 1 value of 5000 ([4096,8191]).
  for (int i = 0; i < 100; ++i) h->Record(10);
  h->Record(5000);
  // p50 and p95 rank inside the dense bucket; quantiles report its
  // upper bound -- never an underestimate of the true value 10.
  EXPECT_EQ(h->Quantile(0.5), 15);
  EXPECT_EQ(h->Quantile(0.95), 15);
  // p100 reaches the outlier's bucket.
  EXPECT_EQ(h->Quantile(1.0), 8191);
  // The same numbers fall out of the snapshot's sampled buckets.
  MetricsSnapshot snap = metrics.Snapshot();
  const MetricSample* s = snap.Find("q");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->Quantile(0.5), 15);
  EXPECT_EQ(s->Quantile(1.0), 8191);
}

TEST_F(MetricsTest, ExpositionGoldens) {
  Metrics metrics;
  metrics.counter("requests")->Add(7);
  metrics.gauge("depth")->Set(-2);
  Histogram* h = metrics.histogram("latency_us");
  h->Record(3);
  h->Record(3);
  h->Record(100);

  MetricsSnapshot snap = metrics.Snapshot();
  // Samples are sorted by name (not grouped by kind).
  EXPECT_EQ(snap.ToText(),
            "gauge depth -2\n"
            "histogram latency_us count=3 sum=106 max=100 "
            "p50=3 p95=127 p99=127\n"
            "counter requests 7\n");
  EXPECT_EQ(snap.ToJson(),
            "{\"counters\":{\"requests\":7},"
            "\"gauges\":{\"depth\":-2},"
            "\"histograms\":{\"latency_us\":{\"count\":3,\"sum\":106,"
            "\"max\":100,\"p50\":3,\"p95\":127,\"p99\":127,"
            "\"buckets\":{\"3\":2,\"127\":1}}}}");
}

TEST_F(MetricsTest, SnapshotSortedAndResettable) {
  Metrics metrics;
  metrics.counter("zz")->Increment();
  metrics.counter("aa")->Increment();
  metrics.gauge("mm")->Set(4);
  MetricsSnapshot snap = metrics.Snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "aa");
  EXPECT_EQ(snap.samples[1].name, "mm");
  EXPECT_EQ(snap.samples[2].name, "zz");
  EXPECT_EQ(snap.Find("nope"), nullptr);

  metrics.Reset();
  Counter* aa = metrics.counter("aa");
  EXPECT_EQ(aa->value(), 0);  // zeroed, registration survives
  MetricsSnapshot after = metrics.Snapshot();
  EXPECT_EQ(after.samples.size(), 3u);
  EXPECT_EQ(after.Find("mm")->value, 0);
}

TEST_F(MetricsTest, WireRoundTrip) {
  Metrics metrics;
  metrics.counter("c")->Add(1234567);
  metrics.gauge("g")->Set(-99);
  Histogram* h = metrics.histogram("h");
  h->Record(0);
  h->Record(17);
  h->Record(1 << 20);
  MetricsSnapshot snap = metrics.Snapshot();

  ByteWriter writer;
  EncodeMetricsSnapshot(snap, &writer);
  std::string bytes = writer.Release();
  ByteReader reader(bytes);
  StatusOr<MetricsSnapshot> decoded = DecodeMetricsSnapshot(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(*decoded, snap);
  // Exposition of the decoded snapshot is bit-identical too.
  EXPECT_EQ(decoded->ToText(), snap.ToText());
  EXPECT_EQ(decoded->ToJson(), snap.ToJson());
}

TEST_F(MetricsTest, DecoderRejectsMalformedSnapshots) {
  Metrics metrics;
  Histogram* h = metrics.histogram("h");
  h->Record(5);
  ByteWriter writer;
  EncodeMetricsSnapshot(metrics.Snapshot(), &writer);
  const std::string good = writer.Release();

  // Truncations at every prefix either fail or leave trailing garbage
  // undetected -- but must never crash or read out of bounds.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    ByteReader reader(std::string_view(good).substr(0, cut));
    StatusOr<MetricsSnapshot> decoded = DecodeMetricsSnapshot(&reader);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
  }

  // An absurd sample count must be rejected before any allocation.
  {
    ByteWriter w;
    w.PutVarint(0xffffffff);
    std::string bytes = w.Release();
    ByteReader reader(bytes);
    EXPECT_FALSE(DecodeMetricsSnapshot(&reader).ok());
  }
  // An unknown sample kind is data loss.
  {
    ByteWriter w;
    w.PutVarint(1);
    w.PutU8(3);  // kinds stop at kHistogram=2
    w.PutString("x");
    w.PutVarint(0);
    std::string bytes = w.Release();
    ByteReader reader(bytes);
    EXPECT_FALSE(DecodeMetricsSnapshot(&reader).ok());
  }
  // A bucket index beyond the histogram geometry is data loss.
  {
    ByteWriter w;
    w.PutVarint(1);
    w.PutU8(2);  // histogram
    w.PutString("x");
    w.PutSignedVarint(1);   // count
    w.PutSignedVarint(5);   // sum
    w.PutSignedVarint(5);   // max
    w.PutVarint(1);         // one bucket
    w.PutVarint(Histogram::kNumBuckets);  // out of range
    w.PutSignedVarint(1);
    std::string bytes = w.Release();
    ByteReader reader(bytes);
    EXPECT_FALSE(DecodeMetricsSnapshot(&reader).ok());
  }
}

TEST_F(MetricsTest, ConcurrentRecordingIsRaceFree) {
  // Hammer one counter/gauge/histogram triple from pool workers while a
  // snapshot is cut concurrently; TSan must stay quiet and the counts
  // must add up once the pool drains.
  Metrics metrics;
  Counter* c = metrics.counter("hammer.count");
  Gauge* g = metrics.gauge("hammer.gauge");
  Histogram* h = metrics.histogram("hammer.hist");
  const int kThreads = 8;
  const int kPerThread = 5000;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Schedule([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        g->Set(t);
        h->Record(i % 1000);
        if (i % 1024 == 0) {
          MetricsSnapshot snap = metrics.Snapshot();
          ASSERT_NE(snap.Find("hammer.hist"), nullptr);
        }
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h->bucket(i);
  }
  EXPECT_EQ(bucket_total, h->count());
}

TEST_F(MetricsTest, ScopedTimerRecordsAndKillSwitchSkips) {
  Metrics metrics;
  Histogram* h = metrics.histogram("scope_us");
  {
    ScopedTimer timer(h);
    EXPECT_GE(timer.ElapsedUs(), 0);
  }
  EXPECT_EQ(h->count(), 1);

  Metrics::set_enabled(false);
  {
    ScopedTimer timer(h);
    EXPECT_EQ(timer.ElapsedUs(), 0);  // no clock reads when disabled
  }
  EXPECT_EQ(h->count(), 1);  // nothing recorded
  // Counters stay live under the kill switch (it gates timing only).
  metrics.counter("still_live")->Increment();
  EXPECT_EQ(metrics.counter("still_live")->value(), 1);
  Metrics::set_enabled(true);
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h->count(), 2);
}

TEST_F(MetricsTest, SlowOpLogThresholdAndRing) {
  SlowOpLog log(/*threshold_us=*/100);
  log.Report("fast", 99, "under threshold");
  EXPECT_TRUE(log.Entries().empty());
  log.Report("slow", 100, "delta_us=40 storage_us=60");
  ASSERT_EQ(log.Entries().size(), 1u);
  EXPECT_EQ(log.Entries()[0].op, "slow");
  EXPECT_EQ(log.Entries()[0].total_us, 100);
  EXPECT_EQ(log.Entries()[0].detail, "delta_us=40 storage_us=60");

  // threshold <= 0 disables reporting entirely.
  log.set_threshold_us(0);
  log.Report("ignored", 1 << 30, "");
  EXPECT_EQ(log.Entries().size(), 1u);
  log.set_threshold_us(1);

  // The ring is bounded: newest kRingCapacity entries survive.
  log.Clear();
  EXPECT_TRUE(log.Entries().empty());
  const int kTotal = static_cast<int>(SlowOpLog::kRingCapacity) + 40;
  for (int i = 0; i < kTotal; ++i) {
    log.Report("op" + std::to_string(i), 10 + i, "");
  }
  std::vector<SlowOpLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), SlowOpLog::kRingCapacity);
  EXPECT_EQ(entries.front().op,
            "op" + std::to_string(kTotal -
                                  static_cast<int>(SlowOpLog::kRingCapacity)));
  EXPECT_EQ(entries.back().op, "op" + std::to_string(kTotal - 1));
}

TEST_F(MetricsTest, SlowOpLogConcurrentReports) {
  SlowOpLog log(/*threshold_us=*/1);
  ThreadPool pool(4);
  for (int t = 0; t < 4; ++t) {
    pool.Schedule([&log] {
      for (int i = 0; i < 1000; ++i) {
        log.Report("hammer", 5, "x=1");
        if (i % 128 == 0) log.Entries();
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(log.Entries().size(), SlowOpLog::kRingCapacity);
}

}  // namespace
}  // namespace pqidx
