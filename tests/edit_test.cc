// Tests for edit operations, inverse computation, and edit logs.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "edit/edit_log.h"
#include "edit/edit_operation.h"
#include "edit/edit_script.h"
#include "tree/generators.h"
#include "tree/tree.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

TEST(EditOperationTest, RenameApplyAndInverse) {
  Tree tree = MustParse("a(b,c)");
  NodeId b = tree.child(tree.root(), 0);
  LabelId x = tree.mutable_dict()->Intern("x");
  EditOperation op = EditOperation::Rename(b, x);
  ASSERT_TRUE(op.IsDefinedOn(tree));

  StatusOr<EditOperation> inv = op.InverseOn(tree);
  ASSERT_TRUE(inv.ok());
  ASSERT_TRUE(op.ApplyTo(&tree).ok());
  EXPECT_EQ(tree.LabelString(b), "x");
  ASSERT_TRUE(inv->ApplyTo(&tree).ok());
  EXPECT_EQ(tree.LabelString(b), "b");
}

TEST(EditOperationTest, DeleteInverseReconstructs) {
  Tree tree = MustParse("a(b,c(e,f),d)");
  std::string before = ToNotationWithIds(tree);
  NodeId c = tree.child(tree.root(), 1);
  EditOperation op = EditOperation::Delete(c);
  StatusOr<EditOperation> inv = op.InverseOn(tree);
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->kind, EditOpKind::kInsert);
  EXPECT_EQ(inv->node, c);
  EXPECT_EQ(inv->position, 1);
  EXPECT_EQ(inv->count, 2);

  ASSERT_TRUE(op.ApplyTo(&tree).ok());
  ASSERT_TRUE(inv->ApplyTo(&tree).ok());
  EXPECT_EQ(ToNotationWithIds(tree), before);
}

TEST(EditOperationTest, InsertInverseIsDelete) {
  Tree tree = MustParse("a(b,c)");
  std::string before = ToNotationWithIds(tree);
  LabelId x = tree.mutable_dict()->Intern("x");
  EditOperation op =
      EditOperation::Insert(tree.AllocateId(), x, tree.root(), 0, 2);
  StatusOr<EditOperation> inv = op.InverseOn(tree);
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->kind, EditOpKind::kDelete);
  ASSERT_TRUE(op.ApplyTo(&tree).ok());
  EXPECT_EQ(ToNotation(tree), "a(x(b,c))");
  ASSERT_TRUE(inv->ApplyTo(&tree).ok());
  EXPECT_EQ(ToNotationWithIds(tree), before);
}

TEST(EditOperationTest, UndefinedOperations) {
  Tree tree = MustParse("a(b)");
  NodeId b = tree.child(tree.root(), 0);
  EXPECT_FALSE(EditOperation::Delete(tree.root()).IsDefinedOn(tree));
  EXPECT_FALSE(EditOperation::Delete(999).IsDefinedOn(tree));
  EXPECT_FALSE(EditOperation::Rename(b, tree.label(b)).IsDefinedOn(tree));
  // Inserting an id already in the tree is undefined.
  EXPECT_FALSE(
      EditOperation::Insert(b, tree.label(b), tree.root(), 0, 0)
          .IsDefinedOn(tree));
  // InverseOn of an undefined operation reports the error.
  EXPECT_FALSE(EditOperation::Delete(999).InverseOn(tree).ok());
}

TEST(EditOperationTest, ToStringRendersAllKinds) {
  Tree tree = MustParse("a(b)");
  LabelId x = tree.mutable_dict()->Intern("x");
  EXPECT_EQ(EditOperation::Delete(7).ToString(tree.dict()), "DEL(7)");
  EXPECT_EQ(EditOperation::Rename(3, x).ToString(tree.dict()), "REN(3, x)");
  EXPECT_EQ(EditOperation::Insert(9, x, 1, 2, 3).ToString(tree.dict()),
            "INS(9:x, v=1, k=2, count=3)");
}

TEST(EditLogTest, ApplyAndLogThenUndoRestoresOriginal) {
  Rng rng(11);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 40});
  std::string original = ToNotationWithIds(tree);

  EditLog log;
  GenerateEditScript(&tree, &rng, 60, EditScriptOptions{}, &log);
  EXPECT_EQ(log.size(), 60);
  EXPECT_NE(ToNotationWithIds(tree), original);

  ASSERT_TRUE(log.UndoAll(&tree).ok());
  EXPECT_EQ(ToNotationWithIds(tree), original);
  tree.CheckConsistency();
}

TEST(EditLogTest, UndoFailsOnMismatchedTree) {
  Tree tree = MustParse("a(b)");
  EditLog log;
  log.Append(EditOperation::Delete(999));  // references a non-existent node
  EXPECT_FALSE(log.UndoAll(&tree).ok());
}

TEST(EditLogTest, SerializationRoundTrip) {
  Rng rng(13);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 25});
  EditLog log;
  GenerateEditScript(&tree, &rng, 30, EditScriptOptions{}, &log);

  ByteWriter w;
  log.Serialize(&w);
  ByteReader r(w.data());
  StatusOr<EditLog> copy = EditLog::Deserialize(&r);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(*copy, log);
  EXPECT_TRUE(r.AtEnd());
}

TEST(EditLogTest, DeserializeRejectsGarbage) {
  ByteWriter w;
  w.PutVarint(1);
  w.PutU8(99);  // invalid kind
  ByteReader r(w.data());
  EXPECT_FALSE(EditLog::Deserialize(&r).ok());
}

TEST(EditScriptTest, ScriptsOnTinyTreesStayValid) {
  Rng rng(17);
  auto tree_or = ParseTreeNotation("a");
  Tree tree = std::move(tree_or).value();
  EditLog log;
  int applied = GenerateEditScript(&tree, &rng, 50, EditScriptOptions{}, &log);
  EXPECT_EQ(applied, 50);
  tree.CheckConsistency();
  ASSERT_TRUE(log.UndoAll(&tree).ok());
  EXPECT_EQ(ToNotation(tree), "a");
}

TEST(EditScriptTest, ForwardOpsRecordedMatchLog) {
  Rng rng(19);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 30});
  Tree original = tree.Clone();
  EditLog log;
  std::vector<EditOperation> forward;
  GenerateEditScript(&tree, &rng, 40, EditScriptOptions{}, &log, &forward);
  ASSERT_EQ(static_cast<int>(forward.size()), log.size());

  // Replaying the forward script on the original produces the same tree.
  for (const EditOperation& op : forward) {
    ASSERT_TRUE(op.ApplyTo(&original).ok());
  }
  EXPECT_EQ(ToNotationWithIds(original), ToNotationWithIds(tree));
}

TEST(EditScriptTest, DeleteHeavyScriptsShrinkTree) {
  Rng rng(23);
  Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 100});
  EditLog log;
  EditScriptOptions options;
  options.insert_weight = 0.0;
  options.rename_weight = 0.0;
  GenerateEditScript(&tree, &rng, 99, options, &log);
  EXPECT_EQ(tree.size(), 1);  // everything but the root deleted
  tree.CheckConsistency();
}

}  // namespace
}  // namespace pqidx
