// Tests for the log optimizer (the paper's Section 10 preprocessing):
// optimized sequences must be semantically identical to the originals, and
// the incremental index update must be unaffected.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "edit/log_optimizer.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

// Applies `ops` in order to a clone of `base` and returns the result.
Tree ApplyAll(const Tree& base, const std::vector<EditOperation>& ops) {
  Tree tree = base.Clone();
  for (const EditOperation& op : ops) {
    Status status = op.ApplyTo(&tree);
    EXPECT_TRUE(status.ok()) << status.ToString() << " applying "
                             << op.ToString(base.dict());
  }
  return tree;
}

TEST(LogOptimizerTest, MergesRenameChains) {
  Tree base = MustParse("a(b,c)");
  NodeId b = base.child(base.root(), 0);
  LabelId x = base.mutable_dict()->Intern("x");
  LabelId y = base.mutable_dict()->Intern("y");
  std::vector<EditOperation> ops = {EditOperation::Rename(b, x),
                                    EditOperation::Rename(b, y)};
  LogOptimizerStats stats;
  std::vector<EditOperation> optimized =
      OptimizeOpSequence(base, ops, &stats);
  ASSERT_EQ(optimized.size(), 1u);
  EXPECT_EQ(optimized[0], EditOperation::Rename(b, y));
  EXPECT_EQ(stats.merged_renames, 1);
  EXPECT_EQ(ToNotationWithIds(ApplyAll(base, optimized)),
            ToNotationWithIds(ApplyAll(base, ops)));
}

TEST(LogOptimizerTest, DropsRenameChainRestoringOriginalLabel) {
  Tree base = MustParse("a(b,c)");
  NodeId b = base.child(base.root(), 0);
  LabelId x = base.mutable_dict()->Intern("x");
  LabelId orig = base.label(b);
  std::vector<EditOperation> ops = {EditOperation::Rename(b, x),
                                    EditOperation::Rename(b, orig)};
  LogOptimizerStats stats;
  std::vector<EditOperation> optimized =
      OptimizeOpSequence(base, ops, &stats);
  EXPECT_TRUE(optimized.empty());
  EXPECT_EQ(stats.dropped_noop_renames, 1);
}

TEST(LogOptimizerTest, CancelsInsertThenDelete) {
  Tree base = MustParse("a(b,c,d)");
  LabelId x = base.mutable_dict()->Intern("x");
  NodeId n = base.AllocateId();
  std::vector<EditOperation> ops = {
      EditOperation::Insert(n, x, base.root(), 1, 2),
      EditOperation::Delete(n)};
  LogOptimizerStats stats;
  std::vector<EditOperation> optimized =
      OptimizeOpSequence(base, ops, &stats);
  EXPECT_TRUE(optimized.empty());
  EXPECT_EQ(stats.cancelled_insert_delete, 1);
}

TEST(LogOptimizerTest, MergesRenameIntoInsert) {
  Tree base = MustParse("a(b)");
  LabelId x = base.mutable_dict()->Intern("x");
  LabelId y = base.mutable_dict()->Intern("y");
  NodeId n = base.AllocateId();
  std::vector<EditOperation> ops = {
      EditOperation::Insert(n, x, base.root(), 0, 0),
      EditOperation::Rename(n, y)};
  std::vector<EditOperation> optimized = OptimizeOpSequence(base, ops);
  ASSERT_EQ(optimized.size(), 1u);
  EXPECT_EQ(optimized[0].label, y);
  EXPECT_EQ(ToNotation(ApplyAll(base, optimized)), "a(y,b)");
}

TEST(LogOptimizerTest, DropsRenameBeforeDelete) {
  Tree base = MustParse("a(b)");
  NodeId b = base.child(base.root(), 0);
  LabelId x = base.mutable_dict()->Intern("x");
  std::vector<EditOperation> ops = {EditOperation::Rename(b, x),
                                    EditOperation::Delete(b)};
  std::vector<EditOperation> optimized = OptimizeOpSequence(base, ops);
  ASSERT_EQ(optimized.size(), 1u);
  EXPECT_EQ(optimized[0], EditOperation::Delete(b));
}

TEST(LogOptimizerTest, InterveningStructureBlocksCancellation) {
  // INS(n); INS(m under n); DEL(n): the pair must NOT cancel (m's insert
  // references n).
  Tree base = MustParse("a(b)");
  LabelId x = base.mutable_dict()->Intern("x");
  NodeId n = base.AllocateId();
  NodeId m = n + 1;
  std::vector<EditOperation> ops = {
      EditOperation::Insert(n, x, base.root(), 0, 0),
      EditOperation::Insert(m, x, n, 0, 0), EditOperation::Delete(n)};
  std::vector<EditOperation> optimized = OptimizeOpSequence(base, ops);
  EXPECT_EQ(optimized.size(), 3u);
  EXPECT_EQ(ToNotationWithIds(ApplyAll(base, optimized)),
            ToNotationWithIds(ApplyAll(base, ops)));
}

TEST(LogOptimizerTest, SiblingChurnBlocksCancellation) {
  // INS(n at pos 0); INS(m at pos 2 of the same parent); DEL(n): removing
  // the pair would shift m's position.
  Tree base = MustParse("a(b,c)");
  LabelId x = base.mutable_dict()->Intern("x");
  NodeId n = base.AllocateId();
  NodeId m = n + 1;
  std::vector<EditOperation> ops = {
      EditOperation::Insert(n, x, base.root(), 0, 0),
      EditOperation::Insert(m, x, base.root(), 2, 0),
      EditOperation::Delete(n)};
  std::vector<EditOperation> optimized = OptimizeOpSequence(base, ops);
  EXPECT_EQ(optimized.size(), 3u);
  EXPECT_EQ(ToNotationWithIds(ApplyAll(base, optimized)),
            ToNotationWithIds(ApplyAll(base, ops)));
}

TEST(LogOptimizerTest, RandomSequencesPreserveSemantics) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    Tree base = GenerateRandomTree(
        nullptr, &rng,
        {.num_nodes = 1 + static_cast<int>(rng.NextBounded(30)),
         .alphabet_size = 3});
    Tree scratch = base.Clone();
    EditLog log;
    std::vector<EditOperation> forward;
    EditScriptOptions options;
    options.reuse_label_probability = 1.0;  // provoke rename collapses
    GenerateEditScript(&scratch, &rng, 40, options, &log, &forward);

    LogOptimizerStats stats;
    std::vector<EditOperation> optimized =
        OptimizeOpSequence(base, forward, &stats);
    EXPECT_LE(optimized.size(), forward.size());
    EXPECT_EQ(stats.input_ops, 40);
    EXPECT_EQ(ToNotationWithIds(ApplyAll(base, optimized)),
              ToNotationWithIds(scratch));
  }
}

TEST(LogOptimizerTest, OptimizedLogYieldsSameIncrementalIndex) {
  Rng rng(43);
  PqShape shape{3, 3};
  for (int trial = 0; trial < 15; ++trial) {
    Tree t0 = GenerateRandomTree(nullptr, &rng,
                                 {.num_nodes = 25, .alphabet_size = 3});
    Tree tn = t0.Clone();
    EditLog log;
    EditScriptOptions options;
    options.reuse_label_probability = 1.0;
    GenerateEditScript(&tn, &rng, 30, options, &log);

    LogOptimizerStats stats;
    EditLog optimized = OptimizeLog(tn, log, &stats);
    EXPECT_LE(optimized.size(), log.size());

    // The optimized log still undoes Tn to T0.
    Tree undo = tn.Clone();
    ASSERT_TRUE(optimized.UndoAll(&undo).ok());
    EXPECT_EQ(ToNotationWithIds(undo), ToNotationWithIds(t0));

    // And drives the incremental update to the same index.
    PqGramIndex via_original = BuildIndex(t0, shape);
    PqGramIndex via_optimized = via_original;
    ASSERT_TRUE(UpdateIndex(&via_original, tn, log).ok());
    ASSERT_TRUE(UpdateIndex(&via_optimized, tn, optimized).ok());
    EXPECT_EQ(via_original, via_optimized);
    EXPECT_EQ(via_optimized, BuildIndex(tn, shape));
  }
}

}  // namespace
}  // namespace pqidx
