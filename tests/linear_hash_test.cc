// Tests for the on-disk linear hash table: CRUD, deltas, growth across
// many splits, overflow chains, and persistence across reopen.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "storage/linear_hash.h"
#include "storage/pager.h"

namespace pqidx {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct Fixture {
  explicit Fixture(const std::string& name, int pool_pages = 64)
      : pager(pool_pages) {
    path = TempPath(name);
    PQIDX_CHECK(pager.Open(path, /*create=*/true).ok());
    StatusOr<PageId> meta = pager.AllocatePage();
    PQIDX_CHECK(meta.ok());
    meta_page = *meta;
    PQIDX_CHECK(table.Create(meta_page).ok());
  }

  std::string path;
  Pager pager;
  LinearHashTable table{&pager};
  PageId meta_page = 0;
};

TEST(LinearHashTest, GetMissingIsZero) {
  Fixture f("lh_missing.db");
  EXPECT_EQ(f.table.Get(1, 42).value(), 0);
  EXPECT_EQ(f.table.entry_count(), 0u);
}

TEST(LinearHashTest, InsertUpdateDelete) {
  Fixture f("lh_crud.db");
  ASSERT_TRUE(f.table.AddDelta(1, 42, 3).ok());
  EXPECT_EQ(f.table.Get(1, 42).value(), 3);
  ASSERT_TRUE(f.table.AddDelta(1, 42, 2).ok());
  EXPECT_EQ(f.table.Get(1, 42).value(), 5);
  ASSERT_TRUE(f.table.AddDelta(1, 42, -5).ok());
  EXPECT_EQ(f.table.Get(1, 42).value(), 0);
  EXPECT_EQ(f.table.entry_count(), 0u);
  f.table.CheckConsistency();
}

TEST(LinearHashTest, NegativeResultRejected) {
  Fixture f("lh_negative.db");
  ASSERT_TRUE(f.table.AddDelta(1, 42, 3).ok());
  EXPECT_FALSE(f.table.AddDelta(1, 42, -4).ok());
  EXPECT_FALSE(f.table.AddDelta(2, 7, -1).ok());  // absent key
  EXPECT_EQ(f.table.Get(1, 42).value(), 3);
}

TEST(LinearHashTest, KeysAreTreeScoped) {
  Fixture f("lh_scope.db");
  ASSERT_TRUE(f.table.AddDelta(1, 42, 10).ok());
  ASSERT_TRUE(f.table.AddDelta(2, 42, 20).ok());
  EXPECT_EQ(f.table.Get(1, 42).value(), 10);
  EXPECT_EQ(f.table.Get(2, 42).value(), 20);
  EXPECT_EQ(f.table.Get(3, 42).value(), 0);
}

TEST(LinearHashTest, GrowsAcrossManySplits) {
  Fixture f("lh_growth.db");
  Rng rng(1);
  std::map<std::pair<uint32_t, uint64_t>, int64_t> model;
  const int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    uint32_t tree = static_cast<uint32_t>(rng.NextBounded(8));
    uint64_t fp = rng.Next();
    int64_t count = 1 + static_cast<int64_t>(rng.NextBounded(9));
    ASSERT_TRUE(f.table.AddDelta(tree, fp, count).ok());
    model[{tree, fp}] += count;
  }
  EXPECT_EQ(f.table.entry_count(), model.size());
  EXPECT_GT(f.table.bucket_count(), 4u);  // must have split many times
  f.table.CheckConsistency();
  // Spot-check and full-check.
  Rng probe(2);
  for (int i = 0; i < 500; ++i) {
    auto it = model.begin();
    std::advance(it, probe.NextBounded(model.size()));
    EXPECT_EQ(f.table.Get(it->first.first, it->first.second).value(),
              it->second);
  }
  std::map<std::pair<uint32_t, uint64_t>, int64_t> scanned;
  ASSERT_TRUE(f.table
                  .ForEach([&](uint32_t tree, uint64_t fp, int64_t count) {
                    scanned[{tree, fp}] = count;
                  })
                  .ok());
  EXPECT_EQ(scanned, model);
}

TEST(LinearHashTest, ChurnWithDeletions) {
  Fixture f("lh_churn.db");
  Rng rng(3);
  std::map<std::pair<uint32_t, uint64_t>, int64_t> model;
  for (int step = 0; step < 30000; ++step) {
    uint32_t tree = static_cast<uint32_t>(rng.NextBounded(4));
    uint64_t fp = rng.NextBounded(2000);  // small key space: collisions
    auto key = std::make_pair(tree, fp);
    if (rng.Bernoulli(0.35) && model.contains(key)) {
      int64_t remove = 1 + static_cast<int64_t>(
                               rng.NextBounded(model[key]));
      ASSERT_TRUE(f.table.AddDelta(tree, fp, -remove).ok());
      model[key] -= remove;
      if (model[key] == 0) model.erase(key);
    } else {
      int64_t add = 1 + static_cast<int64_t>(rng.NextBounded(5));
      ASSERT_TRUE(f.table.AddDelta(tree, fp, add).ok());
      model[key] += add;
    }
  }
  f.table.CheckConsistency();
  EXPECT_EQ(f.table.entry_count(), model.size());
  for (const auto& [key, count] : model) {
    ASSERT_EQ(f.table.Get(key.first, key.second).value(), count);
  }
}

TEST(LinearHashTest, PersistsAcrossReopen) {
  std::string path;
  PageId meta_page;
  std::map<uint64_t, int64_t> model;
  {
    Fixture f("lh_reopen.db");
    path = f.path;
    meta_page = f.meta_page;
    Rng rng(4);
    for (int i = 0; i < 5000; ++i) {
      uint64_t fp = rng.Next();
      ASSERT_TRUE(f.table.AddDelta(9, fp, 7).ok());
      model[fp] = 7;
    }
    ASSERT_TRUE(f.pager.Commit().ok());
    ASSERT_TRUE(f.pager.Close().ok());
  }
  Pager pager;
  ASSERT_TRUE(pager.Open(path, /*create=*/false).ok());
  LinearHashTable table(&pager);
  ASSERT_TRUE(table.Attach(meta_page).ok());
  EXPECT_EQ(table.entry_count(), model.size());
  table.CheckConsistency();
  Rng probe(5);
  for (int i = 0; i < 200; ++i) {
    auto it = model.begin();
    std::advance(it, probe.NextBounded(model.size()));
    EXPECT_EQ(table.Get(9, it->first).value(), it->second);
  }
}

TEST(LinearHashTest, AttachRejectsWrongPage) {
  Fixture f("lh_badmeta.db");
  StatusOr<PageId> other = f.pager.AllocatePage();
  ASSERT_TRUE(other.ok());
  LinearHashTable table(&f.pager);
  EXPECT_FALSE(table.Attach(*other).ok());
}

}  // namespace
}  // namespace pqidx
