# Empty dependencies file for pqidx_cli.
# This may be replaced when dependencies are built.
