file(REMOVE_RECURSE
  "CMakeFiles/pqidx_cli.dir/pqidx.cc.o"
  "CMakeFiles/pqidx_cli.dir/pqidx.cc.o.d"
  "pqidx"
  "pqidx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pqidx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
