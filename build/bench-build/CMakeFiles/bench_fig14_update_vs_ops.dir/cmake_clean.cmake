file(REMOVE_RECURSE
  "../bench/bench_fig14_update_vs_ops"
  "../bench/bench_fig14_update_vs_ops.pdb"
  "CMakeFiles/bench_fig14_update_vs_ops.dir/bench_fig14_update_vs_ops.cc.o"
  "CMakeFiles/bench_fig14_update_vs_ops.dir/bench_fig14_update_vs_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_update_vs_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
