# Empty compiler generated dependencies file for bench_fig14_update_vs_ops.
# This may be replaced when dependencies are built.
