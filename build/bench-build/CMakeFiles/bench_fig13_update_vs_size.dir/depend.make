# Empty dependencies file for bench_fig13_update_vs_size.
# This may be replaced when dependencies are built.
