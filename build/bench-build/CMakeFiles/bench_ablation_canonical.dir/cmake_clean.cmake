file(REMOVE_RECURSE
  "../bench/bench_ablation_canonical"
  "../bench/bench_ablation_canonical.pdb"
  "CMakeFiles/bench_ablation_canonical.dir/bench_ablation_canonical.cc.o"
  "CMakeFiles/bench_ablation_canonical.dir/bench_ablation_canonical.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_canonical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
