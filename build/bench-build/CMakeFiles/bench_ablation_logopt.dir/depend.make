# Empty dependencies file for bench_ablation_logopt.
# This may be replaced when dependencies are built.
