file(REMOVE_RECURSE
  "../bench/bench_ablation_logopt"
  "../bench/bench_ablation_logopt.pdb"
  "CMakeFiles/bench_ablation_logopt.dir/bench_ablation_logopt.cc.o"
  "CMakeFiles/bench_ablation_logopt.dir/bench_ablation_logopt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_logopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
