file(REMOVE_RECURSE
  "../bench/bench_fig13_lookup"
  "../bench/bench_fig13_lookup.pdb"
  "CMakeFiles/bench_fig13_lookup.dir/bench_fig13_lookup.cc.o"
  "CMakeFiles/bench_fig13_lookup.dir/bench_fig13_lookup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
