# Empty dependencies file for bench_fig13_lookup.
# This may be replaced when dependencies are built.
