file(REMOVE_RECURSE
  "CMakeFiles/record_index_test.dir/record_index_test.cc.o"
  "CMakeFiles/record_index_test.dir/record_index_test.cc.o.d"
  "record_index_test"
  "record_index_test.pdb"
  "record_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
