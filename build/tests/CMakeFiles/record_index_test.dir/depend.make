# Empty dependencies file for record_index_test.
# This may be replaced when dependencies are built.
