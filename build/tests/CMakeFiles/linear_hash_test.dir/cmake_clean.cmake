file(REMOVE_RECURSE
  "CMakeFiles/linear_hash_test.dir/linear_hash_test.cc.o"
  "CMakeFiles/linear_hash_test.dir/linear_hash_test.cc.o.d"
  "linear_hash_test"
  "linear_hash_test.pdb"
  "linear_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
