# Empty dependencies file for persistent_index_test.
# This may be replaced when dependencies are built.
