file(REMOVE_RECURSE
  "CMakeFiles/persistent_index_test.dir/persistent_index_test.cc.o"
  "CMakeFiles/persistent_index_test.dir/persistent_index_test.cc.o.d"
  "persistent_index_test"
  "persistent_index_test.pdb"
  "persistent_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
