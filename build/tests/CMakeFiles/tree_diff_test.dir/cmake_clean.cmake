file(REMOVE_RECURSE
  "CMakeFiles/tree_diff_test.dir/tree_diff_test.cc.o"
  "CMakeFiles/tree_diff_test.dir/tree_diff_test.cc.o.d"
  "tree_diff_test"
  "tree_diff_test.pdb"
  "tree_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
