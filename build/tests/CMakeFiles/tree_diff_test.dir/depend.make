# Empty dependencies file for tree_diff_test.
# This may be replaced when dependencies are built.
