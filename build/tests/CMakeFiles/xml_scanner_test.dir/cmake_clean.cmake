file(REMOVE_RECURSE
  "CMakeFiles/xml_scanner_test.dir/xml_scanner_test.cc.o"
  "CMakeFiles/xml_scanner_test.dir/xml_scanner_test.cc.o.d"
  "xml_scanner_test"
  "xml_scanner_test.pdb"
  "xml_scanner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_scanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
