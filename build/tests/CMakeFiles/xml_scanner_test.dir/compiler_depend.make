# Empty compiler generated dependencies file for xml_scanner_test.
# This may be replaced when dependencies are built.
