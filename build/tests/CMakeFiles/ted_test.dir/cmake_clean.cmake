file(REMOVE_RECURSE
  "CMakeFiles/ted_test.dir/ted_test.cc.o"
  "CMakeFiles/ted_test.dir/ted_test.cc.o.d"
  "ted_test"
  "ted_test.pdb"
  "ted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
