file(REMOVE_RECURSE
  "CMakeFiles/ted_search_test.dir/ted_search_test.cc.o"
  "CMakeFiles/ted_search_test.dir/ted_search_test.cc.o.d"
  "ted_search_test"
  "ted_search_test.pdb"
  "ted_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ted_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
