# Empty dependencies file for ted_search_test.
# This may be replaced when dependencies are built.
