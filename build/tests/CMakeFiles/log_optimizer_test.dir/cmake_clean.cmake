file(REMOVE_RECURSE
  "CMakeFiles/log_optimizer_test.dir/log_optimizer_test.cc.o"
  "CMakeFiles/log_optimizer_test.dir/log_optimizer_test.cc.o.d"
  "log_optimizer_test"
  "log_optimizer_test.pdb"
  "log_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
