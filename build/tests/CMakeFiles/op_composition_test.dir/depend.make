# Empty dependencies file for op_composition_test.
# This may be replaced when dependencies are built.
