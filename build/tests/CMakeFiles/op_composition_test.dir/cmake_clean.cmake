file(REMOVE_RECURSE
  "CMakeFiles/op_composition_test.dir/op_composition_test.cc.o"
  "CMakeFiles/op_composition_test.dir/op_composition_test.cc.o.d"
  "op_composition_test"
  "op_composition_test.pdb"
  "op_composition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_composition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
