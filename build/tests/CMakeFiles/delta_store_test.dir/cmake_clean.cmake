file(REMOVE_RECURSE
  "CMakeFiles/delta_store_test.dir/delta_store_test.cc.o"
  "CMakeFiles/delta_store_test.dir/delta_store_test.cc.o.d"
  "delta_store_test"
  "delta_store_test.pdb"
  "delta_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
