# Empty compiler generated dependencies file for delta_store_test.
# This may be replaced when dependencies are built.
