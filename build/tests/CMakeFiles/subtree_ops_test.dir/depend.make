# Empty dependencies file for subtree_ops_test.
# This may be replaced when dependencies are built.
