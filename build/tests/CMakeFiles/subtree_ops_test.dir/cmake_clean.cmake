file(REMOVE_RECURSE
  "CMakeFiles/subtree_ops_test.dir/subtree_ops_test.cc.o"
  "CMakeFiles/subtree_ops_test.dir/subtree_ops_test.cc.o.d"
  "subtree_ops_test"
  "subtree_ops_test.pdb"
  "subtree_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subtree_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
