file(REMOVE_RECURSE
  "CMakeFiles/durable_index.dir/durable_index.cc.o"
  "CMakeFiles/durable_index.dir/durable_index.cc.o.d"
  "durable_index"
  "durable_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
