# Empty dependencies file for durable_index.
# This may be replaced when dependencies are built.
