file(REMOVE_RECURSE
  "CMakeFiles/xml_similarity.dir/xml_similarity.cc.o"
  "CMakeFiles/xml_similarity.dir/xml_similarity.cc.o.d"
  "xml_similarity"
  "xml_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
