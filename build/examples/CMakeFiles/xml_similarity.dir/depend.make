# Empty dependencies file for xml_similarity.
# This may be replaced when dependencies are built.
