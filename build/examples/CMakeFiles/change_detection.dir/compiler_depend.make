# Empty compiler generated dependencies file for change_detection.
# This may be replaced when dependencies are built.
