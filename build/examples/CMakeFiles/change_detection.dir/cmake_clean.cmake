file(REMOVE_RECURSE
  "CMakeFiles/change_detection.dir/change_detection.cc.o"
  "CMakeFiles/change_detection.dir/change_detection.cc.o.d"
  "change_detection"
  "change_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
