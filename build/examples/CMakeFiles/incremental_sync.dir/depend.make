# Empty dependencies file for incremental_sync.
# This may be replaced when dependencies are built.
