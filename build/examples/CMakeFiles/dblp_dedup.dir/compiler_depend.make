# Empty compiler generated dependencies file for dblp_dedup.
# This may be replaced when dependencies are built.
