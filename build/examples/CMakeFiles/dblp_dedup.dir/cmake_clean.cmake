file(REMOVE_RECURSE
  "CMakeFiles/dblp_dedup.dir/dblp_dedup.cc.o"
  "CMakeFiles/dblp_dedup.dir/dblp_dedup.cc.o.d"
  "dblp_dedup"
  "dblp_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
