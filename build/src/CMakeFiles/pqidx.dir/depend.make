# Empty dependencies file for pqidx.
# This may be replaced when dependencies are built.
