file(REMOVE_RECURSE
  "libpqidx.a"
)
