
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/fingerprint.cc" "src/CMakeFiles/pqidx.dir/common/fingerprint.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/common/fingerprint.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/pqidx.dir/common/random.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/common/random.cc.o.d"
  "/root/repo/src/common/serde.cc" "src/CMakeFiles/pqidx.dir/common/serde.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/common/serde.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/pqidx.dir/common/status.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/pqidx.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/canonical.cc" "src/CMakeFiles/pqidx.dir/core/canonical.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/canonical.cc.o.d"
  "/root/repo/src/core/delta.cc" "src/CMakeFiles/pqidx.dir/core/delta.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/delta.cc.o.d"
  "/root/repo/src/core/delta_store.cc" "src/CMakeFiles/pqidx.dir/core/delta_store.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/delta_store.cc.o.d"
  "/root/repo/src/core/distance.cc" "src/CMakeFiles/pqidx.dir/core/distance.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/distance.cc.o.d"
  "/root/repo/src/core/forest_index.cc" "src/CMakeFiles/pqidx.dir/core/forest_index.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/forest_index.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/CMakeFiles/pqidx.dir/core/incremental.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/incremental.cc.o.d"
  "/root/repo/src/core/inverted_index.cc" "src/CMakeFiles/pqidx.dir/core/inverted_index.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/inverted_index.cc.o.d"
  "/root/repo/src/core/join.cc" "src/CMakeFiles/pqidx.dir/core/join.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/join.cc.o.d"
  "/root/repo/src/core/parallel_build.cc" "src/CMakeFiles/pqidx.dir/core/parallel_build.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/parallel_build.cc.o.d"
  "/root/repo/src/core/pqgram.cc" "src/CMakeFiles/pqidx.dir/core/pqgram.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/pqgram.cc.o.d"
  "/root/repo/src/core/pqgram_index.cc" "src/CMakeFiles/pqidx.dir/core/pqgram_index.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/pqgram_index.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/CMakeFiles/pqidx.dir/core/profile.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/profile.cc.o.d"
  "/root/repo/src/core/profile_updater.cc" "src/CMakeFiles/pqidx.dir/core/profile_updater.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/profile_updater.cc.o.d"
  "/root/repo/src/core/record_index.cc" "src/CMakeFiles/pqidx.dir/core/record_index.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/record_index.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/CMakeFiles/pqidx.dir/core/streaming.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/streaming.cc.o.d"
  "/root/repo/src/core/ted_search.cc" "src/CMakeFiles/pqidx.dir/core/ted_search.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/core/ted_search.cc.o.d"
  "/root/repo/src/edit/edit_log.cc" "src/CMakeFiles/pqidx.dir/edit/edit_log.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/edit/edit_log.cc.o.d"
  "/root/repo/src/edit/edit_operation.cc" "src/CMakeFiles/pqidx.dir/edit/edit_operation.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/edit/edit_operation.cc.o.d"
  "/root/repo/src/edit/edit_script.cc" "src/CMakeFiles/pqidx.dir/edit/edit_script.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/edit/edit_script.cc.o.d"
  "/root/repo/src/edit/log_optimizer.cc" "src/CMakeFiles/pqidx.dir/edit/log_optimizer.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/edit/log_optimizer.cc.o.d"
  "/root/repo/src/edit/subtree_ops.cc" "src/CMakeFiles/pqidx.dir/edit/subtree_ops.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/edit/subtree_ops.cc.o.d"
  "/root/repo/src/edit/tree_diff.cc" "src/CMakeFiles/pqidx.dir/edit/tree_diff.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/edit/tree_diff.cc.o.d"
  "/root/repo/src/storage/document_store.cc" "src/CMakeFiles/pqidx.dir/storage/document_store.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/storage/document_store.cc.o.d"
  "/root/repo/src/storage/index_store.cc" "src/CMakeFiles/pqidx.dir/storage/index_store.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/storage/index_store.cc.o.d"
  "/root/repo/src/storage/linear_hash.cc" "src/CMakeFiles/pqidx.dir/storage/linear_hash.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/storage/linear_hash.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/pqidx.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/storage/pager.cc.o.d"
  "/root/repo/src/storage/persistent_forest_index.cc" "src/CMakeFiles/pqidx.dir/storage/persistent_forest_index.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/storage/persistent_forest_index.cc.o.d"
  "/root/repo/src/storage/tree_store.cc" "src/CMakeFiles/pqidx.dir/storage/tree_store.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/storage/tree_store.cc.o.d"
  "/root/repo/src/ted/zhang_shasha.cc" "src/CMakeFiles/pqidx.dir/ted/zhang_shasha.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/ted/zhang_shasha.cc.o.d"
  "/root/repo/src/tree/generators.cc" "src/CMakeFiles/pqidx.dir/tree/generators.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/tree/generators.cc.o.d"
  "/root/repo/src/tree/label_dict.cc" "src/CMakeFiles/pqidx.dir/tree/label_dict.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/tree/label_dict.cc.o.d"
  "/root/repo/src/tree/stats.cc" "src/CMakeFiles/pqidx.dir/tree/stats.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/tree/stats.cc.o.d"
  "/root/repo/src/tree/tree.cc" "src/CMakeFiles/pqidx.dir/tree/tree.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/tree/tree.cc.o.d"
  "/root/repo/src/tree/tree_builder.cc" "src/CMakeFiles/pqidx.dir/tree/tree_builder.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/tree/tree_builder.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/CMakeFiles/pqidx.dir/xml/xml_parser.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/xml/xml_parser.cc.o.d"
  "/root/repo/src/xml/xml_writer.cc" "src/CMakeFiles/pqidx.dir/xml/xml_writer.cc.o" "gcc" "src/CMakeFiles/pqidx.dir/xml/xml_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
